"""Prefix-sharing exploration engine (the model-checking hot path).

The legacy explorer (:mod:`repro.shm.explore`) re-executes every run prefix
from scratch: exploring the schedule tree of an n-process protocol costs
O(nodes x depth) full step re-executions, which caps exhaustive checking at
n <= 3.  This engine turns exploration into a real search procedure:

* **Prefix sharing** — the schedule tree is walked with
  :meth:`repro.shm.runtime.Runtime.fork`: at a branching configuration the
  live runtime is snapshotted once per extra branch instead of replaying
  the whole prefix per node.  A fork clones shared memory and oracle state
  directly and rebuilds generator state by replaying each process's logged
  operation *results* locally — no shared-memory operation is re-executed.

* **State memoization** — interleavings of independent operations commute
  into the same global state.  :meth:`Runtime.state_key` gives a hashable
  signature of the global state; the set of decided output vectors (with
  multiplicity) reachable from a state is a function of the state alone, so
  subtrees are computed once and reused (a partial-order-reduction-flavoured
  collapse, sound for the model's deterministic algorithms).

* **Symmetry canonicalization** — the model's algorithms are
  comparison-based and index-independent (Section 2.2; the harness checks
  both metamorphically), so participant subsets whose identity vectors are
  order-isomorphic produce identical decided-value multisets up to process
  relabelling.  With the default identity assignment ``1..n``, *every*
  size-s subset is order-isomorphic to ``{0..s-1}``: subset-closed
  exploration shrinks from 2^n - 1 subsets to n representatives, each
  weighted by its class size C(n, s).

* **Batching** — :func:`explore_many` runs a battery of named exploration
  tasks across a range of system sizes, optionally on a multiprocess
  executor (jobs are dispatched by registry name, so nothing unpicklable
  crosses the process boundary).

The engine is runtime-polymorphic: it drives anything exposing the small
``fork``/``step``/``state_key``/``enabled_pids``/``outputs``/``result``
surface.  Two cores implement it:

* the **compiled core** (:mod:`repro.shm.compiled`, the default) — step
  tables plus array-backed :class:`~repro.shm.compiled.MachineState`,
  whose forks are plain array copies and whose state keys are packed
  tuples (:func:`make_spec_machine`);
* the **generator core** (:class:`repro.shm.runtime.Runtime`, the
  reference semantics) — forks replay per-process result logs
  (:func:`make_spec_runtime`), kept as the oracle the compiled core is
  differentially tested against (``core="generator"``).

Single explorations can additionally shard their DFS frontier across a
process pool (:mod:`repro.shm.parallel`; ``jobs``/``shard_depth`` on
:func:`explore_one`).  The legacy prefix re-execution explorer remains in
:mod:`repro.shm.explore` (``engine=False``).
"""

from __future__ import annotations

import math
import time
import warnings
from collections import Counter
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Any, Callable, Iterator, Sequence

from .runtime import Algorithm, Runtime, RunResult, freeze_value

#: Runtime cores an exploration can run on.
CORES = ("compiled", "generator")


def _check_core(core: str) -> str:
    if core not in CORES:
        raise ValueError(f"unknown runtime core {core!r}; expected one of {CORES}")
    return core


class ExplorationBudgetExceeded(RuntimeError):
    """Exploration hit ``max_runs``; results so far are incomplete."""


# -- process-wide orbit-memo counters, surfaced via core.cache_config so
# the quotient shows up in cache_stats() / the /stats endpoint like every
# other cache in the repo.
_ORBIT_TOTALS = {
    "explorations": 0,
    "orbits": 0,
    "orbit_hits": 0,
    "lex_pruned": 0,
}


def _orbit_totals() -> dict:
    return dict(_ORBIT_TOTALS)


def _orbit_totals_clear() -> None:
    for key in _ORBIT_TOTALS:
        _ORBIT_TOTALS[key] = 0


def _register_orbit_counters() -> None:
    from ..core.cache_config import register_counters

    try:
        register_counters(
            "engine.orbit_memo", _orbit_totals, _orbit_totals_clear
        )
    except ValueError:  # pragma: no cover - repeated registration on reload
        pass


_register_orbit_counters()


@dataclass
class EngineStats:
    """Counters describing one exploration (observability + docs tables)."""

    nodes: int = 0  #: internal configurations expanded
    runs: int = 0  #: completed runs materialized (after memoization)
    forks: int = 0  #: runtime snapshots taken
    memo_hits: int = 0  #: subtrees served from the state memo
    memo_entries: int = 0  #: distinct states memoized
    subsets_pruned: int = 0  #: participant subsets collapsed by symmetry
    peak_stack: int = 0  #: deepest DFS stack (memory high-water mark)
    orbits: int = 0  #: distinct value-symmetry orbits memoized
    orbit_hits: int = 0  #: subtrees served from the orbit memo
    lex_pruned: int = 0  #: branches pruned by the pre-fork orbit probe

    def merge(self, other: "EngineStats") -> None:
        self.nodes += other.nodes
        self.runs += other.runs
        self.forks += other.forks
        self.memo_hits += other.memo_hits
        self.memo_entries += other.memo_entries
        self.subsets_pruned += other.subsets_pruned
        self.peak_stack = max(self.peak_stack, other.peak_stack)
        self.orbits += other.orbits
        self.orbit_hits += other.orbit_hits
        self.lex_pruned += other.lex_pruned

    def to_json(self) -> dict:
        """Counter dict for the CLI's ``--json`` payloads."""
        return {
            "nodes": self.nodes,
            "runs": self.runs,
            "forks": self.forks,
            "memo_hits": self.memo_hits,
            "memo_entries": self.memo_entries,
            "subsets_pruned": self.subsets_pruned,
            "peak_stack": self.peak_stack,
            "orbits": self.orbits,
            "orbit_hits": self.orbit_hits,
            "lex_pruned": self.lex_pruned,
        }


class PrefixSharingEngine:
    """Explore every interleaving of one system via fork-at-decision-point.

    Args:
        make_runtime: factory producing a fresh :class:`Runtime`; called
            once per exploration (the engine forks from it, it is *not*
            re-invoked per prefix).  The runtime's scheduler is ignored.
        participants: pids allowed to take steps (others crash before
            their first step); defaults to all processes.
        max_runs: raise :class:`ExplorationBudgetExceeded` beyond this many
            *materialized* runs — every completed run in exact mode; in
            memoized mode only leaves actually visited (logical runs
            served from the memo are free, which is the point of the
            budget: it bounds work, and memoized mode does less of it).
        max_depth: per-run step bound (guards against non-termination).
        stats: optional shared :class:`EngineStats` to accumulate into.
        quotient: memoize over value-symmetry *orbits* instead of exact
            states (compiled core only; see :meth:`decided_vectors`).
        relabeler: the spec's declared value-relabeling group
            (:attr:`ExplorationSpec.value_relabel`); None means only the
            relabeling-free orbit refinements apply.
        orbit_memo: optional externally shared orbit-memo dict.  Sharing
            is sound only between explorations of the **same participant
            set** (orbit keys do not encode ``participants``) — the
            subtree-sharding path satisfies this, subset sweeps must not.
        shared_memo: optional cross-process orbit exchange exposing
            ``get(key)`` / ``offer(key, entry)``
            (:class:`repro.shm.memoshare.SharedOrbitMemo`).
    """

    def __init__(
        self,
        make_runtime: Callable[[], Runtime],
        participants: Sequence[int] | None = None,
        max_runs: int | None = None,
        max_depth: int = 10_000,
        stats: EngineStats | None = None,
        quotient: bool = False,
        relabeler: Any = None,
        orbit_memo: dict | None = None,
        shared_memo: Any = None,
    ):
        self._make = make_runtime
        self.participants = (
            None if participants is None else frozenset(participants)
        )
        self.max_runs = max_runs
        self.max_depth = max_depth
        self.stats = stats if stats is not None else EngineStats()
        self.quotient = quotient
        self.relabeler = relabeler
        self.orbit_memo = orbit_memo
        self.shared_memo = shared_memo

    # ------------------------------------------------------------------
    # Exact mode: the drop-in replacement for the legacy explorer
    # ------------------------------------------------------------------

    def runs(self) -> Iterator[RunResult]:
        """Yield every interleaving's :class:`RunResult`.

        Equivalent to the legacy explorer — same runs, same lexicographic
        (by pid) order — but each branch point costs one fork instead of a
        full prefix re-execution.
        """
        produced = 0
        root = self._make()
        allowed = self._allowed(root)
        self._check_depth(root)
        enabled = self._enabled(root, allowed)
        if not enabled:
            self.stats.runs += 1
            yield root.result()
            return
        self.stats.nodes += 1
        # Frames are [runtime, enabled pids, next branch index]; reaching
        # the last branch reuses the frame's runtime instead of forking.
        stack: list[list[Any]] = [[root, enabled, 0]]
        while stack:
            frame = stack[-1]
            runtime, branches, index = frame
            if index == len(branches):
                stack.pop()
                continue
            frame[2] += 1
            if frame[2] == len(branches):
                child = runtime
            else:
                child = runtime.fork()
                self.stats.forks += 1
            child.step(branches[index])
            self._check_depth(child)
            child_enabled = self._enabled(child, allowed)
            if not child_enabled:
                produced += 1
                if self.max_runs is not None and produced > self.max_runs:
                    raise ExplorationBudgetExceeded(
                        f"exploration produced more than {self.max_runs} runs"
                    )
                self.stats.runs += 1
                yield child.result()
                continue
            self.stats.nodes += 1
            stack.append([child, child_enabled, 0])
            self.stats.peak_stack = max(self.stats.peak_stack, len(stack))

    # ------------------------------------------------------------------
    # Pruned mode: memoized decided-vector counting
    # ------------------------------------------------------------------

    def decided_vectors(self, memoize: bool = True) -> Counter:
        """Multiset of decided output vectors over all interleavings.

        Returns a :class:`collections.Counter` mapping the (frozen) tuple
        of per-pid outputs of each completed run to the number of
        interleavings producing it — exactly the multiset the legacy
        explorer's ``RunResult.outputs`` induce, but computed with subtree
        memoization: once the outcome multiset of a global state is known,
        every other interleaving reaching that state reuses it.  Counts are
        preserved because the memoized counter is *added* once per arrival
        path.

        ``memoize=False`` degrades to plain fork-sharing (used by tests to
        show count preservation).

        With ``quotient=True`` (and a compiled-core runtime) the memo is a
        table over value-symmetry **orbits** (:meth:`MachineState.orbit_key
        <repro.shm.compiled.MachineState.orbit_key>`): entries store suffix
        counters over the frame's undecided positions and are re-filled
        from each querying state's own decided outputs — counts stay exact
        and byte-identical to this method's output, the differential suite
        pins that.  A pre-fork probe additionally serves memo hits without
        forking or stepping at all.
        """
        if self.quotient and memoize:
            probe = self._make()
            if hasattr(probe, "orbit_key"):
                return self._decided_vectors_quotient()
            # Generator-core runtimes expose no orbit surface; the exact
            # path below is the reference they are compared against.
        return self._decided_vectors_exact(memoize)

    def _decided_vectors_exact(self, memoize: bool) -> Counter:
        produced = 0
        memo: dict[Any, Counter] = {}
        root = self._make()
        allowed = self._allowed(root)
        self._check_depth(root)

        def leaf(runtime: Runtime) -> Counter:
            nonlocal produced
            produced += 1
            if self.max_runs is not None and produced > self.max_runs:
                raise ExplorationBudgetExceeded(
                    f"exploration produced more than {self.max_runs} runs"
                )
            self.stats.runs += 1
            return Counter(
                {tuple(freeze_value(v) for v in runtime.outputs): 1}
            )

        enabled = self._enabled(root, allowed)
        if not enabled:
            return leaf(root)

        # Post-order DFS with an explicit stack (run length may exceed the
        # recursion limit).  Frames: [runtime, enabled, index, acc, key].
        total: Counter | None = None
        stack: list[list[Any]] = []

        def open_frame(runtime: Runtime, branches: list[int]) -> Counter | None:
            """Push a frame for an internal node, or return a memo hit."""
            key = runtime.state_key() if memoize else None
            if key is not None and key in memo:
                self.stats.memo_hits += 1
                return memo[key]
            self.stats.nodes += 1
            stack.append([runtime, branches, 0, Counter(), key])
            self.stats.peak_stack = max(self.stats.peak_stack, len(stack))
            return None

        def propagate(outcome: Counter) -> None:
            nonlocal total
            if stack:
                stack[-1][3] += outcome
            else:
                total = outcome

        hit = open_frame(root, enabled)
        if hit is not None:
            return Counter(hit)
        while stack:
            frame = stack[-1]
            runtime, branches, index, acc, key = frame
            if index == len(branches):
                if key is not None:
                    memo[key] = acc
                    self.stats.memo_entries += 1
                stack.pop()
                propagate(acc)
                continue
            frame[2] += 1
            if frame[2] == len(branches):
                child = runtime
            else:
                child = runtime.fork()
                self.stats.forks += 1
            child.step(branches[index])
            self._check_depth(child)
            child_enabled = self._enabled(child, allowed)
            if not child_enabled:
                propagate(leaf(child))
                continue
            hit = open_frame(child, child_enabled)
            if hit is not None:
                propagate(hit)
        assert total is not None
        return Counter(total)

    def _decided_vectors_quotient(self) -> Counter:
        """Orbit-quotient DFS (see :meth:`decided_vectors`).

        Structure mirrors :meth:`_decided_vectors_exact`, with three
        changes:

        * memo entries are ``(positions, suffix counts)`` keyed by orbit —
          ``positions`` is the frame's undecided (enabled ∩ allowed) pid
          tuple, and the suffix counts carry only those positions' decided
          values; the decided prefix is constant under a frame, so the
          projection is lossless, and a hit re-fills the suffix over the
          *querying* state's outputs;
        * with a declared relabeler, keys are canonicalized
          (:class:`~repro.shm.compiled.ValueCanonicalizer`) and suffixes
          are stored in the canonical frame — forward-mapped on store,
          inverse-mapped on hit;
        * without a relabeler, a pre-fork probe
          (:meth:`~repro.shm.compiled.MachineState.probe_step`) computes
          each successor's orbit key structurally and serves memo hits
          before paying for the fork + step (counted as ``lex_pruned``:
          the branch is subsumed by the orbit representative explored
          earlier in the engine's lexicographic order).
        """
        produced = 0
        memo: dict[Any, tuple] = (
            self.orbit_memo if self.orbit_memo is not None else {}
        )
        shared = self.shared_memo
        root = self._make()
        allowed = self._allowed(root)
        self._check_depth(root)

        relabeler = self.relabeler
        canon = None
        if relabeler is not None:
            from .compiled import ValueCanonicalizer

            program = root.program
            canon = getattr(program, "_engine_canonicalizer", None)
            if canon is None or canon.relabel is not relabeler:
                canon = ValueCanonicalizer(program, relabeler)
                # Cache on the shared program: canonical-node routing is
                # reusable across every exploration of this step table.
                program._engine_canonicalizer = canon
        probing = canon is None and hasattr(root, "probe_step")
        still = getattr(type(root), "STILL_RUNNING", None)
        max_runs = self.max_runs
        max_depth = self.max_depth
        # With the full participant set (the common case) the per-node
        # allowed-filter over enabled pids is a no-op: skip it.
        full_set = len(allowed) == root.n

        # Hot-loop counters stay locals; folded into stats in `finally`.
        nodes_l = runs_l = forks_l = hits_l = entries_l = 0
        orbits_l = lex_l = peak_l = 0

        # Accumulators are plain dicts, not Counters: Counter.__iadd__
        # rescans the whole accumulator for positivity on every merge,
        # which dominates the hot loop (counts here are never negative).
        def leaf(machine) -> dict:
            nonlocal produced, runs_l
            produced += 1
            if max_runs is not None and produced > max_runs:
                raise ExplorationBudgetExceeded(
                    f"exploration produced more than {max_runs} runs"
                )
            runs_l += 1
            return {tuple(freeze_value(v) for v in machine.outputs): 1}

        def fill(machine, entry, inverse, override_pid, override_value):
            """Replay a memoized suffix counter into this state's frame."""
            positions, suffixes = entry
            base = list(machine.outputs)
            if override_pid is not None:
                base[override_pid] = override_value
            out: dict = {}
            if inverse:
                map_output = relabeler.map_output
                for suffix, count in suffixes.items():
                    full = list(base)
                    for i, v in zip(positions, suffix):
                        full[i] = map_output(v, inverse)
                    key = tuple(full)
                    out[key] = out.get(key, 0) + count
            else:
                for suffix, count in suffixes.items():
                    full = list(base)
                    for i, v in zip(positions, suffix):
                        full[i] = v
                    key = tuple(full)
                    out[key] = out.get(key, 0) + count
            return out

        total: dict | None = None
        stack: list[list[Any]] = []
        _unset = object()

        # Frames: [machine, branches, index, acc, key, inverse, forward,
        # positions].
        def open_frame(machine, branches, key=_unset):
            nonlocal nodes_l, hits_l, peak_l
            inverse = forward = None
            if key is _unset:
                if canon is not None:
                    key, inverse = canon.canonical(machine)
                    if inverse is not None:
                        forward = {src: dst for dst, src in inverse.items()}
                else:
                    key = machine.orbit_key()
            if key is not None:
                entry = memo.get(key)
                if entry is None and shared is not None:
                    entry = shared.get(key)
                    if entry is not None:
                        memo[key] = entry
                if entry is not None:
                    hits_l += 1
                    return fill(machine, entry, inverse, None, None)
            nodes_l += 1
            stack.append(
                [machine, branches, 0, {}, key, inverse, forward,
                 tuple(branches)]
            )
            if len(stack) > peak_l:
                peak_l = len(stack)
            return None

        def propagate(outcome: dict) -> None:
            nonlocal total
            if stack:
                acc = stack[-1][3]
                get = acc.get
                for full, count in outcome.items():
                    acc[full] = get(full, 0) + count
            else:
                total = outcome

        try:
            enabled = self._enabled(root, allowed)
            if not enabled:
                return Counter(leaf(root))
            hit = open_frame(root, enabled)
            if hit is not None:
                return Counter(hit)
            while stack:
                frame = stack[-1]
                machine, branches, index = frame[0], frame[1], frame[2]
                if index == len(branches):
                    acc = frame[3]
                    key = frame[4]
                    if key is not None:
                        positions = frame[7]
                        forward = frame[6]
                        suffixes: dict = {}
                        if forward:
                            map_output = relabeler.map_output
                            for full, count in acc.items():
                                suffix = tuple(
                                    map_output(full[i], forward)
                                    for i in positions
                                )
                                suffixes[suffix] = (
                                    suffixes.get(suffix, 0) + count
                                )
                        elif len(positions) == 1:
                            pos = positions[0]
                            for full, count in acc.items():
                                suffix = (full[pos],)
                                suffixes[suffix] = (
                                    suffixes.get(suffix, 0) + count
                                )
                        else:
                            project = itemgetter(*positions)
                            for full, count in acc.items():
                                suffix = project(full)
                                suffixes[suffix] = (
                                    suffixes.get(suffix, 0) + count
                                )
                        entry = (positions, suffixes)
                        memo[key] = entry
                        entries_l += 1
                        orbits_l += 1
                        if shared is not None:
                            shared.offer(key, entry)
                    stack.pop()
                    propagate(acc)
                    continue
                frame[2] = index + 1
                pid = branches[index]
                pkey = _unset
                if probing:
                    probed = machine.probe_step(pid)
                    if probed is not None:
                        pkey, decided = probed
                        entry = memo.get(pkey)
                        if entry is None and shared is not None:
                            entry = shared.get(pkey)
                            if entry is not None:
                                memo[pkey] = entry
                        if entry is not None:
                            hits_l += 1
                            lex_l += 1
                            if decided is still:
                                propagate(
                                    fill(machine, entry, None, None, None)
                                )
                            else:
                                propagate(
                                    fill(machine, entry, None, pid, decided)
                                )
                            continue
                if frame[2] == len(branches):
                    child = machine
                else:
                    child = machine.fork()
                    forks_l += 1
                child.step(pid)
                if child.step_count > max_depth:
                    self._check_depth(child)
                if full_set:
                    child_enabled = child.enabled_pids()
                else:
                    child_enabled = [
                        p for p in child.enabled_pids() if p in allowed
                    ]
                if not child_enabled:
                    propagate(leaf(child))
                    continue
                hit = open_frame(child, child_enabled, key=pkey)
                if hit is not None:
                    propagate(hit)
            assert total is not None
            return Counter(total)
        finally:
            stats = self.stats
            stats.nodes += nodes_l
            stats.runs += runs_l
            stats.forks += forks_l
            stats.memo_hits += hits_l
            stats.memo_entries += entries_l
            stats.orbits += orbits_l
            stats.orbit_hits += hits_l
            stats.lex_pruned += lex_l
            stats.peak_stack = max(stats.peak_stack, peak_l)
            _ORBIT_TOTALS["explorations"] += 1
            _ORBIT_TOTALS["orbits"] += orbits_l
            _ORBIT_TOTALS["orbit_hits"] += hits_l
            _ORBIT_TOTALS["lex_pruned"] += lex_l

    # ------------------------------------------------------------------

    def _allowed(self, runtime: Runtime) -> frozenset[int]:
        if self.participants is None:
            return frozenset(range(runtime.n))
        return self.participants

    def _enabled(self, runtime: Runtime, allowed: frozenset[int]) -> list[int]:
        return [pid for pid in runtime.enabled_pids() if pid in allowed]

    def _check_depth(self, runtime: Runtime) -> None:
        if runtime.step_count > self.max_depth:
            raise ExplorationBudgetExceeded(
                f"run prefix exceeded {self.max_depth} steps; "
                "non-terminating protocol?"
            )


# ----------------------------------------------------------------------
# Symmetry canonicalization of participant subsets
# ----------------------------------------------------------------------

def order_isomorphism_class(identities: Sequence[int]) -> tuple[int, ...]:
    """The rank pattern of an identity vector (its order-isomorphism class).

    Comparison-based algorithms behave identically on order-isomorphic
    identity vectors, so this tuple is the canonical representative used to
    deduplicate identity assignments and participant subsets.
    """
    ranks = {identity: rank for rank, identity in enumerate(sorted(identities))}
    return tuple(ranks[identity] for identity in identities)


def canonical_participant_classes(
    n: int, min_participants: int = 1
) -> list[tuple[tuple[int, ...], int]]:
    """Representative participant subsets with their symmetry-class sizes.

    With the default identity assignment ``1..n`` every size-s subset has
    an order-isomorphic (ascending) identity vector, so one representative
    ``(0, .., s-1)`` stands for all C(n, s) subsets.  Sound only for
    comparison-based, index-independent algorithms whose decisions are
    abstract task values (the GSB values in ``[1..m]``) — decisions that
    embed raw identities or pids are *not* invariant across the class.
    The model's discipline mandates all three properties (Section 2.2; the
    harness checks them independently).
    """
    return [
        (tuple(range(size)), math.comb(n, size))
        for size in range(min_participants, n + 1)
    ]


@dataclass
class SubsetDecisionProfile:
    """Decided-vector multisets across participant subsets.

    ``by_subset`` maps each explored subset to the Counter of decided
    output vectors of its runs; ``weights`` carries the number of subsets
    each explored representative stands for (1 unless symmetry pruning
    collapsed a class).
    """

    n: int
    by_subset: dict[tuple[int, ...], Counter] = field(default_factory=dict)
    weights: dict[tuple[int, ...], int] = field(default_factory=dict)
    stats: EngineStats = field(default_factory=EngineStats)

    def value_multisets(self) -> Counter:
        """Weighted Counter of decided *value multisets* (sorted tuples).

        Process positions are dropped, which is the level at which
        symmetry-pruned subsets are exchangeable — and the level at which
        GSB legality is defined (occupancy bounds only see the multiset).
        """
        aggregated: Counter = Counter()
        for subset, decisions in self.by_subset.items():
            weight = self.weights.get(subset, 1)
            for outputs, count in decisions.items():
                # Sort by repr: decision values need not be mutually
                # comparable (e.g. tuples containing None), and only a
                # canonical multiset ordering is needed here.
                values = tuple(
                    sorted(
                        (v for v in outputs if v is not None), key=repr
                    )
                )
                aggregated[values] += weight * count
        return aggregated

    @property
    def total_runs(self) -> int:
        return sum(
            self.weights.get(subset, 1) * sum(decisions.values())
            for subset, decisions in self.by_subset.items()
        )


def explore_decided_subsets(
    make_runtime: Callable[[], Runtime],
    min_participants: int = 1,
    assume_symmetric: bool = True,
    memoize: bool = True,
    max_runs: int | None = None,
    max_depth: int = 10_000,
    quotient: bool = False,
    value_relabel: Any = None,
) -> SubsetDecisionProfile:
    """Decided-vector profile over every participant subset.

    With ``assume_symmetric`` (the model's default discipline) only one
    representative subset per size is explored and its results are weighted
    by the class size; otherwise all ``2^n - 1`` subsets run.

    ``quotient`` turns on orbit memoization inside each subset's engine
    (compiled-core factories only).  Each subset keeps its *own* orbit
    memo: orbit keys do not encode the participant set, so sharing one
    table across subsets would conflate their suffix positions.
    """
    probe = make_runtime()
    n = probe.n
    profile = SubsetDecisionProfile(n=n)
    if assume_symmetric:
        classes = canonical_participant_classes(n, min_participants)
        profile.stats.subsets_pruned = sum(
            weight - 1 for _, weight in classes
        )
    else:
        import itertools

        classes = [
            (subset, 1)
            for size in range(min_participants, n + 1)
            for subset in itertools.combinations(range(n), size)
        ]
    for subset, weight in classes:
        engine = PrefixSharingEngine(
            make_runtime,
            participants=subset,
            max_runs=max_runs,
            max_depth=max_depth,
            stats=profile.stats,
            quotient=quotient,
            relabeler=value_relabel if quotient else None,
        )
        profile.by_subset[subset] = engine.decided_vectors(memoize=memoize)
        profile.weights[subset] = weight
    return profile


# ----------------------------------------------------------------------
# Named exploration tasks (the batch API's registry)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ExplorationSpec:
    """A named, parameterized exploration workload.

    The three factories take the system size ``n``; ``task_factory`` builds
    the task specification decided vectors are validated against,
    ``algorithm_factory`` the protocol, and ``system_factory`` a per-run
    system factory (arrays + oracle objects) — deterministic, so that
    exploration is reproducible.
    """

    name: str
    description: str
    task_factory: Callable[[int], Any]
    algorithm_factory: Callable[[int], Algorithm]
    system_factory: Callable[[int], Callable[[], tuple[dict, dict]]]
    min_n: int = 2
    #: ``"pinned"`` (default): oracle values feed arithmetic or carry
    #: semantics — only the relabeling-free orbit refinements apply.
    #: ``"interchangeable"``: values are compared for equality only;
    #: ``value_relabel`` then carries the relabeler the canonicalizer
    #: drives (see :class:`SlotValueRelabeler`).  Declaring a spec
    #: interchangeable when its algorithm computes *with* the values is
    #: unsound; the n<=3 differential suite is the arbiter.
    value_symmetry: str = "pinned"
    value_relabel: Any = None


_SPEC_REGISTRY: dict[str, ExplorationSpec] = {}


def register_spec(spec: ExplorationSpec) -> ExplorationSpec:
    """Add a spec to the registry (overwrites an existing name)."""
    _SPEC_REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> ExplorationSpec:
    if name not in _SPEC_REGISTRY:
        raise KeyError(
            f"unknown exploration task {name!r}; "
            f"registered: {sorted(_SPEC_REGISTRY)}"
        )
    return _SPEC_REGISTRY[name]


def available_specs() -> list[str]:
    return sorted(_SPEC_REGISTRY)


# -- built-in specs.  Factories import lazily (engine sits below
# repro.algorithms in the layer order) and are module-level functions so a
# multiprocess executor can rebuild them from the registry name alone.

def _wsb_task(n: int):
    from ..core.named import weak_symmetry_breaking

    return weak_symmetry_breaking(n)


def _wsb_algorithm(n: int) -> Algorithm:
    from ..algorithms.wsb import wsb_from_renaming

    return wsb_from_renaming()


def _wsb_system(n: int) -> Callable[[], tuple[dict, dict]]:
    from ..algorithms.wsb import RENAMING_OBJECT
    from ..core.named import renaming
    from .oracles import GSBOracle, LexMinStrategy

    def factory() -> tuple[dict, dict]:
        oracle = GSBOracle(renaming(n, 2 * n - 2), strategy=LexMinStrategy())
        return {}, {RENAMING_OBJECT: oracle}

    return factory


def _election_task(n: int):
    from ..core.named import election

    return election(n)


def _election_candidate(ctx):
    """A natural — necessarily incorrect (Theorem 11) — election attempt.

    Write your identity, snapshot, claim leadership iff yours is the
    largest identity visible.  Exploration finds the interleavings where
    two processes each see only themselves and both elect themselves:
    model checking *refuting* a candidate protocol is the workload here.
    """
    yield _write("BALLOT", ctx.identity)
    view = yield _snapshot("BALLOT")
    seen = [identity for identity in view if identity is not None]
    return 1 if ctx.identity == max(seen) else 2


def _election_algorithm(n: int) -> Algorithm:
    return _election_candidate


def _election_system(n: int) -> Callable[[], tuple[dict, dict]]:
    def factory() -> tuple[dict, dict]:
        return {"BALLOT": None}, {}

    return factory


def _renaming_task(n: int):
    from ..core.named import renaming

    return renaming(n, n + 1)


def _renaming_algorithm(n: int) -> Algorithm:
    from ..algorithms.figure2 import figure2_renaming

    return figure2_renaming()


def _renaming_system(n: int) -> Callable[[], tuple[dict, dict]]:
    from ..algorithms.figure2 import KS_OBJECT, STATE_ARRAY
    from ..core.named import k_slot
    from .oracles import GSBOracle, LexMinStrategy

    def factory() -> tuple[dict, dict]:
        oracle = GSBOracle(k_slot(n, n - 1), strategy=LexMinStrategy())
        return {STATE_ARRAY: None}, {KS_OBJECT: oracle}

    return factory


def _wsb_grh_task(n: int):
    from ..core.named import renaming

    return renaming(n, 2 * n - 2)


def _wsb_grh_algorithm(n: int) -> Algorithm:
    from ..algorithms.wsb import renaming_2n2_from_wsb

    return renaming_2n2_from_wsb()


def _wsb_grh_system(n: int) -> Callable[[], tuple[dict, dict]]:
    from ..algorithms.wsb import DOWN_ARRAY, UP_ARRAY, WSB_OBJECT
    from ..core.named import weak_symmetry_breaking
    from .oracles import GSBOracle, LexMinStrategy

    def factory() -> tuple[dict, dict]:
        oracle = GSBOracle(
            weak_symmetry_breaking(n), strategy=LexMinStrategy()
        )
        return {UP_ARRAY: None, DOWN_ARRAY: None}, {WSB_OBJECT: oracle}

    return factory


def _write(array: str, value):
    from .ops import Write

    return Write(array, value)


def _snapshot(array: str):
    from .ops import Snapshot

    return Snapshot(array)


class SlotValueRelabeler:
    """Value relabeler for Figure 2's renaming: KS slots are nominal.

    ``figure2_renaming`` only ever *writes* its acquired slot and compares
    slot fields for equality (via cell occupancy) — no arithmetic, no
    ordering — so any permutation of the slot values maps runs to runs.
    Cells are ``(slot, identity)`` pairs (identities stay pinned), Invoke
    results are slots, Snapshot results are cell tuples, and decided
    outputs in ``1..n-1`` are slots while the fallback names ``n``/``n+1``
    are fixed points of every permutation the canonicalizer builds (it
    only permutes values the oracle handed out).

    Contrast ``wsb``/``wsb-grh``: their adaptive renaming *computes* with
    acquired names (``_nth_free_name`` rank arithmetic over the snapshot),
    so a name permutation does not commute with the algorithm — e.g. with
    names {1,3} taken, swapping 1 and 3 changes which name is "first
    free".  Those specs stay ``pinned``.
    """

    def __init__(self, oracle: str):
        self.oracle = oracle

    def cell_values(self, cell) -> tuple:
        """Oracle values stored in one (frozen) cell."""
        return () if cell is None else (cell[0],)

    def map_cell(self, cell, mapping):
        if cell is None:
            return None
        slot, identity = cell
        return (mapping.get(slot, slot), identity)

    def result_values(self, op, result) -> tuple:
        """Oracle values a process *retains* from one operation result."""
        from .ops import Invoke, Snapshot

        if isinstance(op, Invoke):
            return (result,)
        if isinstance(op, Snapshot):
            return tuple(
                cell[0] for cell in result if cell is not None
            )
        return ()

    def map_result(self, op, result, mapping):
        """The operation result as it would read under the relabeling.

        Must return a value usable as a step-table edge key (same
        freezing as the original result).
        """
        from .ops import Invoke, Snapshot

        if isinstance(op, Invoke):
            return mapping.get(result, result)
        if isinstance(op, Snapshot):
            return tuple(self.map_cell(cell, mapping) for cell in result)
        return result

    def map_output(self, value, mapping):
        return mapping.get(value, value)


register_spec(
    ExplorationSpec(
        name="wsb",
        description="WSB from a (2n-2)-renaming oracle (decide name parity)",
        task_factory=_wsb_task,
        algorithm_factory=_wsb_algorithm,
        system_factory=_wsb_system,
    )
)
register_spec(
    ExplorationSpec(
        name="election",
        description="candidate election protocol refuted by model checking",
        task_factory=_election_task,
        algorithm_factory=_election_algorithm,
        system_factory=_election_system,
    )
)
register_spec(
    ExplorationSpec(
        name="wsb-grh",
        description=(
            "GRH direction: (2n-2)-renaming from a WSB oracle via two-sided "
            "adaptive snapshot renaming (register-contention-heavy)"
        ),
        task_factory=_wsb_grh_task,
        algorithm_factory=_wsb_grh_algorithm,
        system_factory=_wsb_grh_system,
    )
)
register_spec(
    ExplorationSpec(
        name="renaming",
        description="Figure 2: (n+1)-renaming from an (n-1)-slot oracle",
        task_factory=_renaming_task,
        algorithm_factory=_renaming_algorithm,
        system_factory=_renaming_system,
        value_symmetry="interchangeable",
        value_relabel=SlotValueRelabeler(oracle="KS"),
    )
)


# ----------------------------------------------------------------------
# Batched exploration
# ----------------------------------------------------------------------

@dataclass
class BatchResult:
    """Outcome of exploring one (task, n) cell of a batch."""

    name: str
    n: int
    runs: int  #: completed runs (logical, i.e. post-memoization multiset size)
    distinct: int  #: distinct decided output vectors
    violations: int  #: runs whose decided vector is illegal for the task
    seconds: float
    stats: EngineStats
    core: str = "compiled"  #: runtime core the exploration ran on
    shards: int = 0  #: subtree shards (0 = one serial exploration)
    quotient: bool = False  #: value-symmetry orbit quotient was active

    def __str__(self) -> str:
        status = "OK" if self.violations == 0 else f"{self.violations} ILLEGAL"
        return (
            f"{self.name:<10} n={self.n}  runs={self.runs:<8} "
            f"distinct={self.distinct:<5} memo_hits={self.stats.memo_hits:<7} "
            f"forks={self.stats.forks:<7} {self.seconds*1000:8.1f} ms  {status}"
        )

    def to_json(self) -> dict:
        """JSON payload row for the CLI's uniform ``--json`` contract."""
        return {
            "name": self.name,
            "n": self.n,
            "core": self.core,
            "runs": self.runs,
            "distinct": self.distinct,
            "violations": self.violations,
            "seconds": self.seconds,
            "shards": self.shards,
            "quotient": self.quotient,
            "stats": self.stats.to_json(),
        }


def make_spec_runtime(spec: ExplorationSpec, n: int) -> Callable[[], Runtime]:
    """Generator-core runtime factory for one spec (identities ``1..n``)."""
    from .schedulers import RoundRobinScheduler

    algorithm = spec.algorithm_factory(n)
    system_factory = spec.system_factory(n)

    def make_runtime() -> Runtime:
        arrays, objects = system_factory()
        return Runtime(
            algorithm,
            list(range(1, n + 1)),
            RoundRobinScheduler(),  # unused by the engine
            arrays=arrays,
            objects=objects,
        )

    return make_runtime


def make_spec_machine(
    spec: ExplorationSpec,
    n: int,
    record_trace: bool = False,
    frame_nodes: bool = False,
) -> Callable[[], Any]:
    """Compiled-core machine factory for one spec (identities ``1..n``).

    The step table (:class:`repro.shm.compiled.CompiledProtocol`) is
    compiled once per factory and shared by every machine (and fork) it
    produces — the point of the compiled core: the per-exploration cost of
    understanding the algorithm is paid once, after which forks are array
    copies and state keys are packed tuples.  The shared program is
    exposed as ``factory.program`` (the parallel path exports it to pool
    workers).  ``frame_nodes`` turns on local-state node merging in the
    step table (the quotient's history → local-state collapse).
    """
    from .compiled import CompiledProtocol

    algorithm = spec.algorithm_factory(n)
    system_factory = spec.system_factory(n)
    probe_arrays, probe_objects = system_factory()
    program = CompiledProtocol(
        algorithm,
        range(1, n + 1),
        arrays=probe_arrays,
        objects=probe_objects,
        frame_nodes=frame_nodes,
    )

    def make_machine():
        arrays, objects = system_factory()
        return program.machine(
            arrays=arrays, objects=objects, record_trace=record_trace
        )

    make_machine.program = program
    return make_machine


def spec_factory(
    spec: ExplorationSpec,
    n: int,
    core: str = "compiled",
    quotient: bool = False,
) -> Callable[[], Any]:
    """The runtime factory for one spec on the chosen core."""
    _check_core(core)
    if core == "compiled":
        return make_spec_machine(spec, n, frame_nodes=quotient)
    return make_spec_runtime(spec, n)


def explore_one(
    spec: ExplorationSpec | str,
    n: int,
    memoize: bool = True,
    max_runs: int | None = None,
    max_depth: int = 10_000,
    core: str = "compiled",
    jobs: int = 0,
    shard_depth: int | None = None,
    quotient: bool = True,
) -> BatchResult:
    """Explore one spec at one size and validate its decided vectors.

    Args:
        core: ``"compiled"`` (array-backed step-table machines, the
            default) or ``"generator"`` (the reference runtime).
        jobs: with ``jobs >= 2`` the DFS frontier is sharded at
            ``shard_depth`` across a process pool
            (:func:`repro.shm.parallel.explore_decided_parallel`) —
            requires a registry-resolvable spec name.
        shard_depth: frontier depth for the parallel path (default:
            :func:`repro.shm.parallel.default_shard_depth`).
        quotient: memoize over value-symmetry orbits (default on; only
            effective on the compiled core with ``memoize`` — the
            generator core stays the exact reference).
    """
    _check_core(core)
    if isinstance(spec, str):
        spec = get_spec(spec)
    if n < spec.min_n:
        raise ValueError(f"{spec.name} needs n >= {spec.min_n}, got {n}")
    task = spec.task_factory(n)

    parallel = jobs >= 2 or shard_depth is not None
    if parallel and (
        spec.name not in _SPEC_REGISTRY or _SPEC_REGISTRY[spec.name] is not spec
    ):
        warnings.warn(
            f"subtree-parallel exploration needs a registry-resolvable "
            f"spec; {spec.name!r} is not (or not identically) registered — "
            "falling back to one serial exploration",
            RuntimeWarning,
            stacklevel=2,
        )
        parallel = False

    effective_quotient = bool(quotient and memoize and core == "compiled")
    stats = EngineStats()
    shards = 0
    started = time.perf_counter()
    if parallel:
        from .parallel import explore_decided_parallel

        outcome = explore_decided_parallel(
            spec.name,
            n,
            jobs=jobs,
            shard_depth=shard_depth,
            memoize=memoize,
            max_runs=max_runs,
            max_depth=max_depth,
            core=core,
            stats=stats,
            quotient=effective_quotient,
        )
        decisions = outcome.decisions
        shards = outcome.shards
    else:
        engine = PrefixSharingEngine(
            spec_factory(spec, n, core, quotient=effective_quotient),
            max_runs=max_runs,
            max_depth=max_depth,
            stats=stats,
            quotient=effective_quotient,
            relabeler=(
                spec.value_relabel if effective_quotient else None
            ),
        )
        decisions = engine.decided_vectors(memoize=memoize)
    seconds = time.perf_counter() - started
    identities = list(range(1, n + 1))
    violations = sum(
        count
        for outputs, count in decisions.items()
        if not task.is_legal_output(list(outputs), identities)
    )
    return BatchResult(
        name=spec.name,
        n=n,
        runs=sum(decisions.values()),
        distinct=len(decisions),
        violations=violations,
        seconds=seconds,
        stats=stats,
        core=core,
        shards=shards,
        quotient=effective_quotient,
    )


def _explore_job(name: str, n: int, options: dict) -> BatchResult:
    """Module-level worker for the multiprocess executor (picklable args)."""
    return explore_one(get_spec(name), n, **options)


def explore_many(
    tasks: Sequence[ExplorationSpec | str],
    n_range: Sequence[int],
    executor: str | None = None,
    max_workers: int | None = None,
    memoize: bool = True,
    max_runs: int | None = None,
    max_depth: int = 10_000,
    core: str = "compiled",
    subtree_jobs: int = 0,
    shard_depth: int | None = None,
    quotient: bool = True,
) -> list[BatchResult]:
    """Explore a battery of tasks across system sizes.

    Args:
        tasks: registry names or :class:`ExplorationSpec` objects.
        n_range: system sizes; each (task, n) pair is one job.  Sizes below
            a spec's ``min_n`` are skipped.
        executor: ``"process"`` fans whole (task, n) jobs out on a
            :class:`concurrent.futures.ProcessPoolExecutor` — only jobs
            named via the registry can cross the process boundary, any
            others (and any executor failure) fall back to serial.
        core: runtime core every exploration runs on (``"compiled"`` /
            ``"generator"``).
        subtree_jobs / shard_depth: with ``subtree_jobs >= 2`` each
            exploration shards its own DFS frontier at ``shard_depth``
            instead (:mod:`repro.shm.parallel`); mutually exclusive with
            ``executor="process"`` (pools do not nest — the per-cell
            executor is ignored in that case).
        max_workers / memoize / max_runs / max_depth: passed through.
    """
    _check_core(core)
    options = {
        "memoize": memoize,
        "max_runs": max_runs,
        "max_depth": max_depth,
        "core": core,
        "quotient": quotient,
    }
    jobs: list[tuple[ExplorationSpec | str, int]] = []
    for spec in tasks:
        resolved = get_spec(spec) if isinstance(spec, str) else spec
        for n in n_range:
            if n >= resolved.min_n:
                jobs.append((spec, n))

    if subtree_jobs >= 2 or shard_depth is not None:
        # shard_depth alone still shards (serial shards when the worker
        # count is < 2), so the reported shard coverage is always real.
        return [
            explore_one(
                spec, n, jobs=subtree_jobs, shard_depth=shard_depth, **options
            )
            for spec, n in jobs
        ]

    if executor == "process":
        named = [(spec, n) for spec, n in jobs if isinstance(spec, str)]
        if len(named) == len(jobs):
            from concurrent.futures import ProcessPoolExecutor
            from concurrent.futures.process import BrokenProcessPool

            try:
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    futures = [
                        pool.submit(_explore_job, spec, n, options)
                        for spec, n in named
                    ]
                    return [future.result() for future in futures]
            except (OSError, BrokenProcessPool):
                # Degrade to serial silently only for *infrastructure*
                # failures: sandboxes that forbid subprocesses.  Real
                # exploration errors (budget, protocol, oracle misuse)
                # propagate.
                pass
            except KeyError as error:
                # A pool worker could not resolve a spec from its own
                # registry (spawn-start children only see register_spec
                # calls made at import time of modules they import too).
                # The serial fallback below will still work — the parent
                # *can* resolve the name — but degrade loudly: silent
                # serialization looked exactly like a healthy pool.
                warnings.warn(
                    f"process-pool exploration fell back to serial: a "
                    f"worker could not resolve a spec from the registry "
                    f"({error.args[0] if error.args else error!r})",
                    RuntimeWarning,
                    stacklevel=2,
                )

    return [explore_one(spec, n, **options) for spec, n in jobs]
