"""Tests for the exact-split asymmetric family (election generalized)."""

import pytest

from repro.core import (
    GSBSpecificationError,
    check_theorem_8,
    classify,
    election,
    exact_split,
    k_weak_symmetry_breaking,
    Solvability,
)


class TestDefinition:
    def test_counting_vector_is_pinned(self):
        assert set(exact_split(6, 2).counting_vectors()) == {(2, 4)}

    def test_k1_is_election(self):
        for n in (3, 4, 6):
            assert exact_split(n, 1).same_task(election(n))

    def test_outputs(self):
        task = exact_split(5, 2)
        assert task.is_legal_output([1, 1, 2, 2, 2])
        assert task.is_legal_output([2, 1, 2, 1, 2])
        assert not task.is_legal_output([1, 1, 1, 2, 2])
        assert not task.is_legal_output([2, 2, 2, 2, 2])

    def test_range_enforced(self):
        with pytest.raises(GSBSpecificationError):
            exact_split(4, 0)
        with pytest.raises(GSBSpecificationError):
            exact_split(4, 4)


class TestStructure:
    def test_sits_inside_k_wsb(self):
        for n, k in [(6, 2), (8, 3), (7, 2)]:
            assert k_weak_symmetry_breaking(n, k).includes(exact_split(n, k))

    def test_theorem_8_applies(self):
        for n, k in [(4, 1), (5, 2), (6, 3)]:
            assert check_theorem_8(exact_split(n, k))

    def test_classification(self):
        # k=1 is election (Theorem 11); general k is outside the paper.
        verdict, _ = classify(exact_split(5, 1))
        assert verdict is Solvability.UNSOLVABLE
        verdict, _ = classify(exact_split(6, 2))
        assert verdict is Solvability.OPEN

    def test_never_communication_free(self):
        from repro.core import is_communication_free_solvable

        for n, k in [(4, 1), (5, 2), (6, 3)]:
            assert not is_communication_free_solvable(exact_split(n, k))


class TestOnSimulator:
    def test_solved_from_perfect_renaming(self):
        from repro.algorithms import (
            gsb_from_perfect_renaming,
            perfect_renaming_system_factory,
        )
        from repro.shm import check_algorithm

        n, k = 6, 2
        task = exact_split(n, k)
        report = check_algorithm(
            task,
            gsb_from_perfect_renaming(task),
            n,
            system_factory=perfect_renaming_system_factory(n, seed=3),
            runs=30,
            seed=4,
        )
        assert report.ok, report.violations[:2]
