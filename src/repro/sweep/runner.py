"""The campaign runner: multiprocess workers draining the job queue.

A *campaign* is a long-running attempt to shrink a universe store's OPEN
region.  Its lifecycle:

``prepare``
    Load the graph (overrides applied), list the OPEN cells in the
    rectangle, and enqueue each cell's attack ladder
    (:func:`repro.sweep.attacks.default_ladder`) into the SQLite queue
    at ``<store>/sweep/jobs.sqlite``.  Idempotent — re-preparing adds
    only work that is not already queued.

``run``
    Fork ``workers`` processes that lease jobs, run attacks, heartbeat
    their leases, and commit results.  The parent supervises: it
    requeues expired leases and replaces crashed workers (a worker that
    dies mid-attack — SIGKILL, OOM, injected fault — costs one lease
    timeout, nothing more).  ``workers=0`` runs the same loop inline,
    which tests and benchmarks use for determinism.

``finalize``
    Fold the queue's results into the universe store: for every cell the
    deterministic (rung, attack)-least closing job wins, its certificate
    payload is committed through
    :meth:`repro.universe.persist.UniverseStore.apply_closures`, and a
    propagation-only close-open pass pushes the new verdicts along the
    graph's certified edges.  Finalize reads only ``done`` rows in a
    deterministic order, so an interrupted-and-resumed campaign
    converges to the byte-identical overrides document (hence store
    fingerprint) of an uninterrupted one.

The queue is the write-ahead log and the overrides file is the
checkpoint: killing any process at any instant loses at most one
in-flight attack, never a committed result.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..testing.faults import install_from_env
from ..universe.persist import UniverseStore
from .attacks import default_ladder, run_attack
from .jobs import (
    DONE,
    JobStore,
    OUTCOME_CLOSED,
    OUTCOME_REFUTED,
    PENDING,
    RUNNING,
)

__all__ = ["SweepConfig", "SweepRunner", "sweep_jobs_path"]

Key = tuple[int, int, int, int]


def sweep_jobs_path(store_root: str | Path) -> Path:
    """Where a store's campaign queue lives."""
    return Path(store_root) / "sweep" / "jobs.sqlite"


@dataclass(frozen=True)
class SweepConfig:
    """Campaign knobs; the signature fields stamp the overrides document."""

    workers: int = 2
    max_rounds: int = 3
    max_conflicts: int = 1_000_000
    max_assignments: int = 2_000_000
    lease_seconds: float = 300.0
    max_attempts: int = 3
    poll_seconds: float = 0.2
    #: Total process spawns allowed (worker crashes consume respawns).
    max_spawns: int | None = None

    def signature(self) -> dict:
        """What the campaign tried — recorded next to its closures."""
        return {
            "sweep": True,
            "max_rounds": self.max_rounds,
            "max_conflicts": self.max_conflicts,
            "max_assignments": self.max_assignments,
        }


def _worker_main(
    jobs_path: str,
    owner: str,
    lease_seconds: float,
    max_attempts: int,
) -> None:
    """One worker process: lease, attack, commit, repeat until drained."""
    install_from_env()
    queue = JobStore(jobs_path)
    # Heartbeats run on their own connection: SQLite connections are
    # thread-affine, and the attack blocks the main thread for minutes.
    beats = JobStore(jobs_path)
    while True:
        job = queue.lease(owner, lease_seconds)
        if job is None:
            return
        stop = threading.Event()

        def keep_alive(job_id: int = job.id) -> None:
            while not stop.wait(lease_seconds / 3):
                if not beats.heartbeat(job_id, owner, lease_seconds):
                    return  # lease lost; the attack's result will be dropped

        beat = threading.Thread(target=keep_alive, daemon=True)
        beat.start()
        try:
            outcome, seconds = run_attack(job.attack, job.key, job.params)
        except Exception as error:  # noqa: BLE001 - any attack failure retries
            stop.set()
            beat.join()
            queue.fail(job.id, owner, repr(error), max_attempts)
            continue
        stop.set()
        beat.join()
        committed = queue.complete(
            job.id, owner, outcome.outcome, outcome.to_json(), seconds
        )
        if committed and outcome.outcome == OUTCOME_CLOSED:
            # The cell is decided; deeper rungs for it are wasted work.
            queue.supersede_pending(job.key)


@dataclass
class SweepReport:
    """What one ``run`` + ``finalize`` pass accomplished."""

    enqueued: int = 0
    completed: int = 0
    closed_cells: list[Key] = field(default_factory=list)
    propagated: int = 0
    spawns: int = 0
    seconds: float = 0.0


class SweepRunner:
    """Drives one campaign against one universe store."""

    def __init__(
        self, store: UniverseStore, config: SweepConfig | None = None
    ) -> None:
        self.store = store
        self.config = config or SweepConfig()
        self.jobs = JobStore(sweep_jobs_path(store.root))

    # -- prepare ---------------------------------------------------------

    def open_keys(
        self, max_n: int | None = None, max_m: int | None = None
    ) -> list[Key]:
        """The store's OPEN cells (overrides applied), sorted."""
        graph = self.store.load(max_n=max_n, max_m=max_m)
        return sorted(
            node.key for node in graph.nodes() if node.solvability == "open"
        )

    def prepare(
        self, max_n: int | None = None, max_m: int | None = None
    ) -> int:
        """Enqueue the attack ladder for every OPEN cell; returns new jobs."""
        entries = []
        for key in self.open_keys(max_n=max_n, max_m=max_m):
            for attack, rung, params in default_ladder(
                key,
                max_rounds=self.config.max_rounds,
                max_conflicts=self.config.max_conflicts,
                max_assignments=self.config.max_assignments,
            ):
                entries.append((key, attack, rung, params))
        inserted = self.jobs.enqueue(entries)
        self.jobs.set_meta(
            "signature", json.dumps(self.config.signature(), sort_keys=True)
        )
        self.jobs.set_meta("store_root", str(self.store.root))
        return inserted

    # -- run -------------------------------------------------------------

    def run(self, max_jobs: int | None = None) -> int:
        """Drain the queue; returns the number of attacks completed.

        With ``workers == 0`` everything runs inline (deterministic, no
        forking); otherwise the parent supervises a pool of worker
        processes, requeueing expired leases and replacing any worker
        that exits — cleanly or by crash — while work remains.
        """
        before = self.jobs.counts().get(DONE, 0)
        if self.config.workers <= 0:
            self._run_inline(max_jobs)
        else:
            self._run_forked()
        return self.jobs.counts().get(DONE, 0) - before

    def _run_inline(self, max_jobs: int | None) -> None:
        completed = 0
        while max_jobs is None or completed < max_jobs:
            self.jobs.requeue_stale()
            job = self.jobs.lease("inline", self.config.lease_seconds)
            if job is None:
                return
            try:
                outcome, seconds = run_attack(job.attack, job.key, job.params)
            except Exception as error:  # noqa: BLE001
                self.jobs.fail(
                    job.id, "inline", repr(error), self.config.max_attempts
                )
                continue
            committed = self.jobs.complete(
                job.id, "inline", outcome.outcome, outcome.to_json(), seconds
            )
            if committed and outcome.outcome == OUTCOME_CLOSED:
                self.jobs.supersede_pending(job.key)
            completed += 1

    def _run_forked(self) -> None:
        config = self.config
        limit = (
            config.max_spawns
            if config.max_spawns is not None
            else config.workers * 8
        )
        context = multiprocessing.get_context("fork")
        procs: dict[str, multiprocessing.Process] = {}
        spawned = 0
        try:
            while True:
                self.jobs.requeue_stale()
                counts = self.jobs.counts()
                pending = counts.get(PENDING, 0)
                running = counts.get(RUNNING, 0)
                for name, proc in list(procs.items()):
                    if not proc.is_alive():
                        proc.join()
                        del procs[name]
                if pending == 0 and running == 0:
                    if not procs:
                        return
                elif not procs and spawned >= limit:
                    # Crash loop: every allowed spawn died with work left.
                    raise RuntimeError(
                        f"sweep gave up after {spawned} worker spawns with "
                        f"{pending + running} jobs unfinished"
                    )
                while (
                    len(procs) < config.workers
                    and pending > 0
                    and spawned < limit
                ):
                    spawned += 1
                    name = f"sweep-worker-{spawned}"
                    proc = context.Process(
                        target=_worker_main,
                        args=(
                            str(self.jobs.path),
                            name,
                            config.lease_seconds,
                            config.max_attempts,
                        ),
                        name=name,
                    )
                    proc.start()
                    procs[name] = proc
                time.sleep(config.poll_seconds)
        finally:
            for proc in procs.values():
                proc.terminate()
            for proc in procs.values():
                proc.join()

    # -- finalize --------------------------------------------------------

    def finalize(self, propagate: bool = True) -> SweepReport:
        """Commit queue results into the store, deterministically.

        Already-closed cells (a previous finalize, or a concurrent
        close-open run) are never overwritten — the first committed
        certificate for a cell stays, which keeps replays idempotent.
        """
        from ..decision.certificates import certificate_id

        started = time.perf_counter()
        report = SweepReport()
        existing = self.store.read_overrides().get("overrides", {})

        by_cell: dict[Key, list] = {}
        for job in self.jobs.iter_done():
            by_cell.setdefault(job.key, []).append(job)

        closures: dict[Key, dict] = {}
        evidence: dict[Key, tuple[str, ...]] = {}
        open_entries: dict[Key, dict] = {}
        for key, jobs in sorted(by_cell.items()):
            lines: list[str] = []
            for job in jobs:
                if job.result and job.outcome == OUTCOME_REFUTED:
                    lines.extend(job.result.get("evidence", ()))
            winner = next(
                (job for job in jobs if job.outcome == OUTCOME_CLOSED), None
            )
            if winner is not None:
                report.closed_cells.append(key)
                if ",".join(str(part) for part in key) in existing:
                    continue  # already committed; keep the stored row
                payload = winner.result["certificate"]
                closures[key] = {
                    "solvability": winner.result["verdict"],
                    "reason": (
                        f"sweep[{winner.attack}]: {winner.result['reason']}"
                    ),
                    "tier": 4,
                    "procedure": "decision-map",
                    "certificate_id": certificate_id(payload),
                    "certificate": payload,
                }
                if lines:
                    evidence[key] = tuple(lines)
            elif lines:
                # Strengthened bounded-round refutation evidence for a
                # cell that stays OPEN: warm the decide cache with it.
                open_entries[key] = {
                    "solvability": "open",
                    "reason": (
                        "sweep: every queued attack refuted or exhausted"
                    ),
                    "tier": 4,
                    "procedure": "decision-map",
                    "certificate_id": None,
                    "certificate": None,
                    "evidence": lines,
                }
        self.store.apply_closures(
            closures,
            self.config.signature(),
            evidence=evidence,
            open_entries=open_entries,
        )
        if propagate and closures:
            # Push the new verdicts along certified edges (tier 3 only:
            # the empirical tier is what the queue just ran).
            from ..decision.procedures import DecisionBudget

            before = len(self.store.read_overrides().get("overrides", {}))
            self.store.close_open(
                DecisionBudget(
                    max_empirical_n=0,
                    max_rounds=self.config.max_rounds,
                )
            )
            after = len(self.store.read_overrides().get("overrides", {}))
            report.propagated = after - before
        report.completed = sum(
            1 for jobs in by_cell.values() for _ in jobs
        )
        report.seconds = time.perf_counter() - started
        return report

    # -- one-shot convenience -------------------------------------------

    def campaign(
        self,
        max_n: int | None = None,
        max_m: int | None = None,
        max_jobs: int | None = None,
    ) -> SweepReport:
        """prepare + run + finalize, returning the combined report."""
        started = time.perf_counter()
        enqueued = self.prepare(max_n=max_n, max_m=max_m)
        self.run(max_jobs=max_jobs)
        report = self.finalize()
        report.enqueued = enqueued
        report.seconds = time.perf_counter() - started
        return report
