"""Crash-resume tests: kill workers mid-attack, assert nothing is lost.

The two fault points bracket the interesting crash windows:

* ``sweep.lease.commit`` — the worker dies the instant it owns work it
  has not done.  The job must come back via stale-lease requeue and be
  completed by a later worker, with its attempt count advanced.
* ``sweep.result.write`` — the worker dies inside the result
  transaction, after the attack finished but before the commit.  The
  write must roll back (no torn row) and the re-run must reproduce the
  identical result.

The end-to-end tests drive real forked workers through ``REPRO_FAULTS``
(the env-var seam workers parse at startup) and finish by comparing the
crashed-and-resumed store against an uninterrupted control campaign:
identical job rows, identical overrides document, identical store
fingerprint.  The inline tests pin the same two windows deterministically
with in-process injected exceptions.
"""

import os
import threading

import pytest

from repro.sweep import SweepConfig, SweepRunner
from repro.sweep.jobs import DONE, JobStore, PENDING, RUNNING
from repro.testing.faults import FAULTS
from repro.universe import UniverseStore

TARGET = (4, 3, 0, 2)


def fast_config(**overrides):
    """Sub-second attacks and short leases so crashes recover quickly."""
    defaults = dict(
        workers=1,
        max_rounds=1,
        max_conflicts=200_000,
        max_assignments=200_000,
        lease_seconds=0.5,
        poll_seconds=0.05,
        max_spawns=100,
    )
    defaults.update(overrides)
    return SweepConfig(**defaults)


def build_store(tmp_path, name):
    store = UniverseStore(tmp_path / name)
    store.build(4, 3)
    return store


class Boom(Exception):
    """The injected in-process crash."""


def die(context):
    raise Boom("injected crash")


@pytest.mark.slow
class TestKilledWorkerCampaigns:
    @pytest.mark.parametrize(
        "point", ["sweep.lease.commit", "sweep.result.write"]
    )
    def test_kill_then_resume_matches_uninterrupted_run(
        self, tmp_path, monkeypatch, point
    ):
        control = build_store(tmp_path, "control")
        control_runner = SweepRunner(control, fast_config(workers=0))
        control_runner.campaign()

        # Arm the kill for the first forked worker(s), then clear the
        # environment shortly after: workers copy it at fork time, so the
        # early spawns die on the point and every respawn comes up
        # healthy — a transient crash the supervisor must ride out.
        crashed = build_store(tmp_path, "crashed")
        monkeypatch.setenv("REPRO_FAULTS", f"{point}=exit:code=1")
        disarm = threading.Timer(
            0.5, lambda: os.environ.pop("REPRO_FAULTS", None)
        )
        disarm.start()
        try:
            runner = SweepRunner(crashed, fast_config())
            report = runner.campaign()
        finally:
            disarm.cancel()
            os.environ.pop("REPRO_FAULTS", None)

        counts = runner.jobs.counts()
        assert counts.get(PENDING, 0) == 0
        assert counts.get(RUNNING, 0) == 0
        assert counts[DONE] == 2
        assert report.completed == 2
        # Zero lost and zero duplicated results: row for row, the crashed
        # campaign converged to the uninterrupted one...
        def rows(job_store):
            return [
                (j.key, j.attack, j.rung, j.outcome, j.result)
                for j in job_store.iter_done()
            ]

        assert rows(runner.jobs) == rows(control_runner.jobs)
        # ...and so did the stores it finalized into.
        assert crashed.read_overrides() == control.read_overrides()
        assert (
            crashed.decision_cache.get(TARGET)
            == control.decision_cache.get(TARGET)
        )
        assert crashed.fingerprint() == control.fingerprint()

    def test_crash_loop_gives_up_loudly(self, tmp_path, monkeypatch):
        store = build_store(tmp_path, "doomed")
        # Every worker dies at its first lease and the arm never clears:
        # the supervisor must fail the run, not spin forever.
        monkeypatch.setenv("REPRO_FAULTS", "sweep.lease.commit=exit:code=1")
        runner = SweepRunner(store, fast_config(max_spawns=3))
        runner.prepare()
        with pytest.raises(RuntimeError, match="worker spawns"):
            runner.run()


class TestInlineCrashWindows:
    """The same two windows, driven deterministically in-process."""

    def test_lease_commit_crash_requeues_with_attempt_kept(self, tmp_path):
        store = build_store(tmp_path, "inline-lease")
        # lease_seconds < 0: the crashed lease is stale the instant it is
        # taken, so the resumed runner recovers it without waiting.
        runner = SweepRunner(store, fast_config(workers=0, lease_seconds=-1))
        runner.prepare()
        with FAULTS.injected("sweep.lease.commit", die, times=1):
            with pytest.raises(Boom):
                runner.run()
        # The lease committed before the crash: the row is running and
        # owned by a dead worker, not lost.
        queue = JobStore(runner.jobs.path)
        assert queue.counts() == {RUNNING: 1, PENDING: 1}
        # Resuming requeues the stale lease and drains everything; the
        # interrupted job re-runs on its second attempt.
        resumed = SweepRunner(store, fast_config(workers=0))
        assert resumed.run() == 2
        done = list(resumed.jobs.iter_done())
        assert len(done) == 2
        assert max(job.attempts for job in done) == 2

    def test_result_write_crash_loses_no_commit(self, tmp_path):
        store = build_store(tmp_path, "inline-result")
        runner = SweepRunner(store, fast_config(workers=0, lease_seconds=-1))
        runner.prepare()
        with FAULTS.injected("sweep.result.write", die, times=1):
            with pytest.raises(Boom):
                runner.run()
        # The result transaction rolled back: the attack's work is gone
        # but the row is intact and still leased — never half-written.
        queue = JobStore(runner.jobs.path)
        torn = next(j for j in queue.iter_jobs() if j.status == RUNNING)
        assert torn.outcome is None
        assert torn.result is None
        resumed = SweepRunner(store, fast_config(workers=0))
        assert resumed.run() == 2
        assert resumed.jobs.counts() == {DONE: 2}
