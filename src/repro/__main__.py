"""Command-line interface: regenerate the paper's artifacts from a shell.

Usage::

    python -m repro table1 [--n 6 --m 3]
    python -m repro figure1 [--n 6 --m 3] [--dot]
    python -m repro atlas --n 8 --m 4
    python -m repro named --n 6
    python -m repro binomials [--max-n 32]
    python -m repro classify N M L U
    python -m repro census --max-n 40 [--min-n 2] [--max-m 6] [--jobs 8]
                           [--per-cell] [--json out.json]
    python -m repro explore [--tasks wsb,election,renaming] [--n 2 3 4]
    python -m repro verify

``verify`` is the one-shot acceptance check: Table 1 and Figure 1 must
match the published content, and Figure 2 must pass exhaustive model
checking at n = 3.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_table1(args) -> int:
    from .analysis import render_table1, table1, table1_matches_paper

    table = table1(args.n, args.m)
    print(render_table1(table))
    if (args.n, args.m) == (6, 3):
        ok, problems = table1_matches_paper(table)
        print(f"\nmatches the published Table 1: {ok}")
        if problems:
            for problem in problems:
                print(f"  {problem}")
            return 1
    return 0


def _cmd_figure1(args) -> int:
    from .analysis import figure1, render_figure1, to_dot

    figure = figure1(args.n, args.m)
    if args.dot:
        print(to_dot(figure))
    else:
        print(render_figure1(figure))
    return 0


def _cmd_atlas(args) -> int:
    from .analysis import render_family_atlas

    print(render_family_atlas(args.n, args.m))
    return 0


def _cmd_named(args) -> int:
    from .analysis import render_named_tasks

    print(render_named_tasks(args.n))
    return 0


def _cmd_binomials(args) -> int:
    from .analysis import render_binomial_table

    print(render_binomial_table(max_n=args.max_n))
    return 0


def _cmd_classify(args) -> int:
    from .core import SymmetricGSBTask, canonical_representative, classify

    task = SymmetricGSBTask(args.task_n, args.task_m, args.task_l, args.task_u)
    verdict, reason = classify(task)
    print(f"task: {task}")
    if task.is_feasible:
        print(f"kernel set: {list(task.kernel_set)}")
        print(f"canonical representative: {canonical_representative(task)}")
    print(f"classification: {verdict.value}")
    print(f"because: {reason}")
    return 0


def _cmd_census(args) -> int:
    from .analysis import render_census_report, run_census, write_census_json

    if args.min_n < 1 or args.max_n < args.min_n:
        print(
            f"error: need 1 <= --min-n <= --max-n, got "
            f"{args.min_n}..{args.max_n}",
            file=sys.stderr,
        )
        return 2
    if args.max_m < 1:
        print(f"error: need --max-m >= 1, got {args.max_m}", file=sys.stderr)
        return 2
    if args.jobs < 0:
        print(f"error: need --jobs >= 0, got {args.jobs}", file=sys.stderr)
        return 2
    report = run_census(
        range(args.min_n, args.max_n + 1),
        range(1, args.max_m + 1),
        jobs=args.jobs,
    )
    print(render_census_report(report, per_cell=args.per_cell))
    if args.json:
        write_census_json(report, args.json)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_explore(args) -> int:
    from .shm.engine import (
        ExplorationBudgetExceeded,
        available_specs,
        explore_many,
        get_spec,
        make_spec_runtime,
    )

    names = (
        available_specs() if args.tasks == "all" else args.tasks.split(",")
    )
    try:
        for name in names:
            get_spec(name)  # fail fast on typos, before any exploration runs
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    try:
        results = explore_many(
            names,
            args.n,
            executor="process" if args.jobs else None,
            max_workers=args.jobs or None,
            memoize=not args.no_memo,
            max_runs=args.max_runs,
        )
    except ExplorationBudgetExceeded as error:
        print(f"error: {error}; raise --max-runs", file=sys.stderr)
        return 2
    print(
        f"{'task':<10} {'n':>3} {'runs':>14} {'distinct':>9} "
        f"{'memo_hits':>10} {'forks':>9} {'time':>11}  status"
    )
    failures = 0
    for result in results:
        status = (
            "OK" if result.violations == 0 else f"{result.violations} ILLEGAL"
        )
        print(
            f"{result.name:<10} {result.n:>3} {result.runs:>14} "
            f"{result.distinct:>9} {result.stats.memo_hits:>10} "
            f"{result.stats.forks:>9} {result.seconds*1000:>8.1f} ms  {status}"
        )
        # The election spec is *supposed* to be refuted by model checking.
        if result.violations and result.name != "election":
            failures += 1
    if args.compare_legacy:
        import time as _time

        from .shm.explore import _legacy_explore_interleavings

        print("\nlegacy re-execution explorer on the same workloads:")
        for result in results:
            make_runtime = make_spec_runtime(get_spec(result.name), result.n)
            started = _time.perf_counter()
            legacy_runs = sum(
                1 for _ in _legacy_explore_interleavings(make_runtime)
            )
            elapsed = _time.perf_counter() - started
            speedup = elapsed / result.seconds if result.seconds else float("inf")
            print(
                f"{result.name:<10} n={result.n}  runs={legacy_runs:<10} "
                f"{elapsed*1000:10.1f} ms   engine speedup {speedup:8.1f}x"
            )
    return 1 if failures else 0


def _cmd_verify(args) -> int:
    from .algorithms import figure2_renaming, figure2_system_factory, figure2_task
    from .analysis import figure1_matches_paper, table1_matches_paper
    from .shm import check_algorithm_exhaustive

    failures = 0

    ok, problems = table1_matches_paper()
    print(f"Table 1 regeneration: {'OK' if ok else problems}")
    failures += not ok

    ok, problems = figure1_matches_paper()
    print(f"Figure 1 regeneration: {'OK' if ok else problems}")
    failures += not ok

    report = check_algorithm_exhaustive(
        figure2_task(3),
        figure2_renaming(),
        3,
        system_factory=figure2_system_factory(3, seed=0),
    )
    print(
        f"Figure 2 model check (n=3, {report.runs} runs): "
        f"{'OK' if report.ok else report.violations[:3]}"
    )
    failures += not report.ok

    print(f"\n{'all artifacts verified' if not failures else 'FAILURES'}")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The Universe of Symmetry Breaking Tasks'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1_parser = subparsers.add_parser("table1", help="regenerate Table 1")
    table1_parser.add_argument("--n", type=int, default=6)
    table1_parser.add_argument("--m", type=int, default=3)
    table1_parser.set_defaults(handler=_cmd_table1)

    figure1_parser = subparsers.add_parser("figure1", help="regenerate Figure 1")
    figure1_parser.add_argument("--n", type=int, default=6)
    figure1_parser.add_argument("--m", type=int, default=3)
    figure1_parser.add_argument("--dot", action="store_true")
    figure1_parser.set_defaults(handler=_cmd_figure1)

    atlas_parser = subparsers.add_parser("atlas", help="annotated family atlas")
    atlas_parser.add_argument("--n", type=int, required=True)
    atlas_parser.add_argument("--m", type=int, required=True)
    atlas_parser.set_defaults(handler=_cmd_atlas)

    named_parser = subparsers.add_parser("named", help="named-task verdicts")
    named_parser.add_argument("--n", type=int, default=6)
    named_parser.set_defaults(handler=_cmd_named)

    binomials_parser = subparsers.add_parser(
        "binomials", help="Theorem 10 gcd table"
    )
    binomials_parser.add_argument("--max-n", type=int, default=32)
    binomials_parser.set_defaults(handler=_cmd_binomials)

    classify_parser = subparsers.add_parser(
        "classify", help="classify a <n,m,l,u> task"
    )
    classify_parser.add_argument("task_n", type=int, metavar="N")
    classify_parser.add_argument("task_m", type=int, metavar="M")
    classify_parser.add_argument("task_l", type=int, metavar="L")
    classify_parser.add_argument("task_u", type=int, metavar="U")
    classify_parser.set_defaults(handler=_cmd_classify)

    census_parser = subparsers.add_parser(
        "census",
        help="whole-universe family census on the closed-form pipeline",
    )
    census_parser.add_argument("--max-n", type=int, default=40)
    census_parser.add_argument("--min-n", type=int, default=2)
    census_parser.add_argument("--max-m", type=int, default=6)
    census_parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="shard (n, m) cells over a process pool (0 = in-process)",
    )
    census_parser.add_argument(
        "--per-cell",
        action="store_true",
        help="print one row per (n, m) family instead of the per-n rollup",
    )
    census_parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also dump the full per-cell census as JSON",
    )
    census_parser.set_defaults(handler=_cmd_census)

    explore_parser = subparsers.add_parser(
        "explore",
        help="batched exhaustive exploration on the prefix-sharing engine",
    )
    explore_parser.add_argument(
        "--tasks",
        default="all",
        help="comma-separated registry names, or 'all' (default)",
    )
    explore_parser.add_argument(
        "--n", type=int, nargs="+", default=[2, 3], help="system sizes"
    )
    explore_parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="fan out on a process pool with this many workers (0 = serial)",
    )
    explore_parser.add_argument(
        "--max-runs",
        type=int,
        default=None,
        help="per-job budget on materialized runs (memoized logical runs "
        "are free)",
    )
    explore_parser.add_argument(
        "--no-memo",
        action="store_true",
        help="disable state memoization (fork-sharing only)",
    )
    explore_parser.add_argument(
        "--compare-legacy",
        action="store_true",
        help="also time the legacy re-execution explorer and print speedups",
    )
    explore_parser.set_defaults(handler=_cmd_explore)

    verify_parser = subparsers.add_parser(
        "verify", help="one-shot artifact acceptance check"
    )
    verify_parser.set_defaults(handler=_cmd_verify)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
