"""The containment partial order on GSB tasks (Section 4.4).

Writing ``S(T)`` for the output-vector set of T, a task T1 is *at least as
hard* as T2 when ``S(T1) subset-of S(T2)``: any algorithm solving T1 also
solves T2 (every T1-legal output is T2-legal).  Lemmas 4 and 5 show
hardness is monotone in the bounds; Theorem 5 identifies the hardest
``<n, m, -, ->`` task; Theorem 6 gives bound-tightening inclusions; and
Figure 1 draws the Hasse diagram of canonical ``<6, 3, -, ->`` tasks.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import networkx as nx

from .canonical import canonical_parameters, canonical_representative, is_canonical
from .feasibility import feasible_bound_pairs
from .gsb import SymmetricGSBTask


def is_harder(task: SymmetricGSBTask, other: SymmetricGSBTask) -> bool:
    """True when ``task`` is at least as hard: ``S(task) subset S(other)``."""
    return other.includes(task)


def is_strictly_harder(task: SymmetricGSBTask, other: SymmetricGSBTask) -> bool:
    """Strict hardness: containment holds and the tasks differ."""
    return is_harder(task, other) and not task.same_task(other)


def check_lemma_4(task: SymmetricGSBTask, wider_high: int) -> bool:
    """Lemma 4: raising u enlarges (weakly) the output set."""
    n, m, low, high = task.parameters
    if wider_high < high:
        raise ValueError(f"lemma 4 needs u' >= u, got {wider_high} < {high}")
    wider = SymmetricGSBTask(n, m, low, wider_high)
    return wider.includes(task)


def check_lemma_5(task: SymmetricGSBTask, smaller_low: int) -> bool:
    """Lemma 5: lowering l enlarges (weakly) the output set."""
    n, m, low, high = task.parameters
    if smaller_low > low:
        raise ValueError(f"lemma 5 needs l' <= l, got {smaller_low} > {low}")
    wider = SymmetricGSBTask(n, m, smaller_low, high)
    return wider.includes(task)


def hardest_parameters(n: int, m: int) -> tuple[int, int]:
    """Theorem 5's hardest ``(l, u)`` pair, valid for every ``m >= 1``.

    ``(floor(n/m), ceil(n/m))`` — for ``m > n`` this degenerates to
    ``(0, 1)``, i.e. m-renaming, whose singleton kernel set is contained
    in every feasible sibling of the wide family.  Shared by
    :func:`hardest` and the universe subsystem's hardest-node flags and
    Theorem 8 edges, so the three can never diverge.
    """
    if n < 1 or m < 1:
        raise ValueError(f"need n, m >= 1, got n={n}, m={m}")
    return (n // m, math.ceil(n / m))


def hardest(n: int, m: int) -> SymmetricGSBTask:
    """Theorem 5: ``<n, m, floor(n/m), ceil(n/m)>`` is the hardest feasible
    ``<n, m, -, ->`` task: it is included in every feasible sibling."""
    if not 1 <= m <= n:
        raise ValueError(f"need 1 <= m <= n, got m={m}, n={n}")
    return SymmetricGSBTask(n, m, *hardest_parameters(n, m))


def check_theorem_5(n: int, m: int) -> bool:
    """The hardest task is included in every feasible ``<n, m, l, u>``."""
    bottom = hardest(n, m)
    return all(
        SymmetricGSBTask(n, m, low, high).includes(bottom)
        for low, high in feasible_bound_pairs(n, m)
    )


def check_theorem_6(task: SymmetricGSBTask) -> bool:
    """Theorem 6 inclusions for one feasible task.

    (i)  l' = n - u(m-1) >= l  implies  S(<n,m,l',u>) subset S(task);
    (ii) u' = n - l(m-1) <= u  implies  S(<n,m,l,u'>) subset S(task).
    """
    n, m, low, high = task.parameters
    tightened_low = n - high * (m - 1)
    if tightened_low >= low:
        inner = SymmetricGSBTask(n, m, tightened_low, high)
        if not task.includes(inner):
            return False
    tightened_high = n - low * (m - 1)
    if tightened_high <= high:
        inner = SymmetricGSBTask(n, m, low, tightened_high)
        if not task.includes(inner):
            return False
    return True


def canonical_family(n: int, m: int) -> list[SymmetricGSBTask]:
    """All canonical feasible ``<n, m, -, ->`` tasks (Figure 1's nodes).

    One representative per synonym class, ordered by (l, u).
    """
    return [
        task
        for low, high in feasible_bound_pairs(n, m)
        if is_canonical(task := SymmetricGSBTask(n, m, low, high))
    ]


def kernel_bitmasks(
    n: int, m: int, pairs: Iterable[tuple[int, int]]
) -> dict[tuple[int, int], int]:
    """Kernel-set bitmasks over one family's master column list.

    Bit ``i`` of the mask for ``(l, u)`` is set exactly when the i-th
    kernel column of the loosest ``<n, m, 0, n>`` task belongs to the
    kernel set of ``<n, m, l, u>`` — a weakly decreasing vector lies
    within bounds iff its first entry is ``<= u`` and its last ``>= l``.
    Containment then collapses to integer subset tests:
    ``S(a) superset S(b)`` iff ``mask_b & ~mask_a == 0``.  This is the
    shared substrate of :func:`containment_digraph` and the universe
    graph subsystem (:mod:`repro.universe.graph`).
    """
    from .store import get_store  # store sits above order in core's init

    columns = get_store().kernel_columns(n, m)
    masks: dict[tuple[int, int], int] = {}
    for low, high in pairs:
        if (low, high) in masks:
            continue
        mask = 0
        for bit, vector in enumerate(columns):
            if vector[0] <= high and vector[-1] >= low:
                mask |= 1 << bit
        masks[(low, high)] = mask
    return masks


def containment_digraph(
    tasks: Sequence[SymmetricGSBTask], method: str = "bitmask"
) -> nx.DiGraph:
    """Full strict-containment relation as a DAG.

    Edge ``a -> b`` means ``S(a)`` strictly contains ``S(b)`` — i.e. b is
    strictly harder — matching Figure 1's arrow convention
    ("A -> B means A strictly includes B").
    Nodes are the tasks' ``(l, u)`` canonical parameters.

    The default ``method="bitmask"`` routes through
    :func:`kernel_bitmasks`: each family's masks are computed once over
    the shared master column list and containment collapses to integer
    subset tests, instead of the O(F^2) pairwise ``is_strictly_harder``
    calls on task objects that ``method="legacy"`` retains (and the
    tests pin the two identical).
    """
    graph = nx.DiGraph()
    if method == "legacy":
        for task in tasks:
            graph.add_node(_node_key(task), task=task)
        for outer in tasks:
            for inner in tasks:
                if outer is inner:
                    continue
                if is_strictly_harder(inner, outer):
                    graph.add_edge(_node_key(outer), _node_key(inner))
        return graph
    if method != "bitmask":
        raise ValueError(f"unknown method {method!r}; use 'bitmask' or 'legacy'")
    # Canonicalize each task exactly once; the key doubles as the graph
    # node and the edge endpoint below.
    by_family: dict[tuple[int, int], list[tuple[SymmetricGSBTask, tuple]]] = {}
    for task in tasks:
        key = canonical_parameters(task.n, task.m, task.low, task.high)
        graph.add_node(key, task=task)
        by_family.setdefault((task.n, task.m), []).append((task, key))
    # Tasks from different families never contain one another, so only
    # intra-family pairs are compared (matching the legacy behavior of
    # ``includes`` returning False across families).
    for (n, m), group in by_family.items():
        masks = kernel_bitmasks(n, m, [(t.low, t.high) for t, _ in group])
        annotated = [
            (masks[(task.low, task.high)], key) for task, key in group
        ]
        for i, (outer_mask, outer_key) in enumerate(annotated):
            for j, (inner_mask, inner_key) in enumerate(annotated):
                if i == j:
                    continue
                if inner_mask != outer_mask and inner_mask & ~outer_mask == 0:
                    graph.add_edge(outer_key, inner_key)
    return graph


def hasse_diagram(
    tasks: Sequence[SymmetricGSBTask], method: str = "bitmask"
) -> nx.DiGraph:
    """Transitive reduction of the containment DAG: Figure 1's edges."""
    full = containment_digraph(tasks, method=method)
    reduced = nx.transitive_reduction(full)
    # transitive_reduction drops node attributes; restore them.
    for node, data in full.nodes(data=True):
        reduced.add_node(node, **data)
    return reduced


def figure1_hasse(n: int = 6, m: int = 3) -> nx.DiGraph:
    """The Hasse diagram of canonical ``<n, m, -, ->`` tasks.

    With the paper's defaults (n=6, m=3) this regenerates Figure 1:
    seven canonical tasks with the chain
    ``(0,6) -> (0,5) -> (0,4) -> {(1,4), (0,3)} -> (1,3) -> (2,2)``.
    """
    return hasse_diagram(canonical_family(n, m))


def chains(graph: nx.DiGraph) -> list[list[tuple[int, int]]]:
    """All maximal source-to-sink chains of a Hasse diagram."""
    sources = [node for node in graph if graph.in_degree(node) == 0]
    sinks = [node for node in graph if graph.out_degree(node) == 0]
    found = []
    for source in sources:
        for sink in sinks:
            found.extend(nx.all_simple_paths(graph, source, sink))
    return [list(path) for path in found]


def incomparable_pairs(
    tasks: Iterable[SymmetricGSBTask],
) -> list[tuple[SymmetricGSBTask, SymmetricGSBTask]]:
    """Task pairs with neither containment (Section 7 asks about these).

    For n=6, m=3 the paper points out <6,3,1,4> and <6,3,0,3> are
    incomparable.
    """
    tasks = list(tasks)
    pairs = []
    for i, first in enumerate(tasks):
        for second in tasks[i + 1 :]:
            if not first.includes(second) and not second.includes(first):
                pairs.append((first, second))
    return pairs


def _node_key(task: SymmetricGSBTask) -> tuple[int, int]:
    canonical = canonical_representative(task)
    return (canonical.low, canonical.high)
