"""Universe-as-a-service: the HTTP read path over a packed store.

The ROADMAP north star is serving ``decide``/``query`` traffic, not
re-running the CLI per question.  This subpackage is that read path:

* :mod:`repro.serve.service` — :class:`UniverseService`, a transport-free
  request router over a read-only :class:`repro.universe.UniverseStore`
  (point lookups ride the binary pack + hot-node LRU; cone/frontier
  queries ride the fingerprint-memoized assembled graph).  Responses
  carry ETags keyed on certificate content hashes, so unchanged answers
  revalidate with a ``304`` and no body.
* :mod:`repro.serve.metrics` — :class:`ServiceMetrics`, per-endpoint
  request/error/304/latency counters exposed at ``/stats`` next to the
  process-wide cache counters of :mod:`repro.core.cache_config`.
* :mod:`repro.serve.http` — the stdlib :mod:`asyncio` HTTP/1.1 front end
  (keep-alive, no third-party deps): :func:`serve_forever` behind
  ``python -m repro serve`` and :class:`BackgroundServer`, the threaded
  harness the tests/benchmarks/CI smoke drive real sockets with.  The
  request path is hardened: per-request deadlines, idle/read timeouts
  and a bounded in-flight gate that sheds load with ``503`` +
  ``Retry-After`` (knobs on :class:`ServeConfig`).
* :mod:`repro.serve.supervisor` — the pre-fork multi-worker supervisor
  behind ``serve --workers N``: N forked event loops sharing one port
  (``SO_REUSEPORT`` or an inherited fd), crash detection with
  exponential-backoff restart, SIGTERM graceful drain, SIGHUP rolling
  restart, and a shared :class:`~repro.serve.supervisor.WorkerBoard`
  aggregated at ``/stats``.

The service is deliberately a pure function of ``(method, path, query,
body, if_none_match)`` so the whole contract surface is testable without
opening a socket; the HTTP layer only parses bytes and serializes
:class:`Response`.
"""

from .http import BackgroundServer, ServeConfig, serve_forever
from .metrics import ServiceMetrics
from .service import Response, UniverseService
from .supervisor import SupervisedServer, Supervisor, SupervisorConfig

__all__ = [
    "BackgroundServer",
    "Response",
    "ServeConfig",
    "ServiceMetrics",
    "SupervisedServer",
    "Supervisor",
    "SupervisorConfig",
    "UniverseService",
    "serve_forever",
]
