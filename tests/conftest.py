"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

# Keep property tests fast and deterministic in CI-like environments.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running end-to-end campaign tests"
    )


@pytest.fixture
def small_family_grid():
    """(n, m) pairs small enough for exhaustive structural sweeps."""
    return [
        (n, m)
        for n in range(2, 8)
        for m in range(1, n + 1)
    ]


@pytest.fixture
def paper_family():
    """The paper's running example: n=6, m=3."""
    return (6, 3)
