"""Tests for the containment order (Lemmas 4-5, Theorems 5-6, Figure 1)."""

import networkx as nx
import pytest

from repro.core import (
    SymmetricGSBTask,
    canonical_family,
    containment_digraph,
    figure1_hasse,
    hardest,
    hasse_diagram,
    incomparable_pairs,
    is_harder,
    is_strictly_harder,
)
from repro.core.order import chains, check_lemma_4, check_lemma_5, check_theorem_5, check_theorem_6


class TestLemmas4And5:
    def test_lemma_4_sweep(self):
        for low in range(0, 3):
            for high in range(max(low, 2), 6):
                task = SymmetricGSBTask(6, 3, low, high)
                for wider in range(high, 7):
                    assert check_lemma_4(task, wider)

    def test_lemma_5_sweep(self):
        for low in range(0, 3):
            for high in range(max(low, 2), 7):
                task = SymmetricGSBTask(6, 3, low, high)
                for smaller in range(0, low + 1):
                    assert check_lemma_5(task, smaller)

    def test_lemma_4_rejects_decreasing(self):
        with pytest.raises(ValueError):
            check_lemma_4(SymmetricGSBTask(6, 3, 0, 4), 3)

    def test_lemma_5_rejects_increasing(self):
        with pytest.raises(ValueError):
            check_lemma_5(SymmetricGSBTask(6, 3, 1, 4), 2)


class TestTheorem5:
    def test_hardest_parameters(self):
        assert hardest(6, 3).parameters == (6, 3, 2, 2)
        assert hardest(7, 3).parameters == (7, 3, 2, 3)
        assert hardest(5, 5).parameters == (5, 5, 1, 1)  # perfect renaming

    def test_hardest_included_in_all(self, small_family_grid):
        for n, m in small_family_grid:
            assert check_theorem_5(n, m)

    def test_hardest_kernel_is_balanced_singleton(self):
        from repro.core import balanced_kernel_vector

        for n, m in [(6, 3), (7, 3), (10, 4)]:
            assert hardest(n, m).kernel_set == (balanced_kernel_vector(n, m),)

    def test_hardest_rejects_bad_m(self):
        with pytest.raises(ValueError):
            hardest(3, 4)


class TestTheorem6:
    def test_sweep(self):
        for n, m in [(6, 3), (8, 4), (10, 4), (7, 2)]:
            for low in range(n + 1):
                for high in range(low, n + 1):
                    task = SymmetricGSBTask(n, m, low, high)
                    if task.is_feasible:
                        assert check_theorem_6(task), task


class TestHardnessRelation:
    def test_is_harder_via_containment(self):
        harder = SymmetricGSBTask(6, 3, 1, 3)
        easier = SymmetricGSBTask(6, 3, 0, 4)
        assert is_harder(harder, easier)
        assert not is_harder(easier, harder)

    def test_strictly_harder_excludes_synonyms(self):
        first = SymmetricGSBTask(6, 3, 1, 4)
        second = SymmetricGSBTask(6, 3, 1, 6)
        assert not is_strictly_harder(first, second)
        assert not is_strictly_harder(second, first)

    def test_paper_incomparable_pair(self):
        # Section 4.1: <6,3,1,4> and <6,3,0,3> are incomparable.
        first = SymmetricGSBTask(6, 3, 1, 4)
        second = SymmetricGSBTask(6, 3, 0, 3)
        assert not first.includes(second)
        assert not second.includes(first)


class TestFigure1:
    def test_canonical_family_has_7_nodes(self):
        assert len(canonical_family(6, 3)) == 7

    def test_hasse_is_the_paper_figure(self):
        graph = figure1_hasse()
        assert set(graph.edges) == {
            ((0, 6), (0, 5)), ((0, 5), (0, 4)), ((0, 4), (1, 4)),
            ((0, 4), (0, 3)), ((1, 4), (1, 3)), ((0, 3), (1, 3)),
            ((1, 3), (2, 2)),
        }

    def test_hasse_is_transitive_reduction(self):
        family = canonical_family(6, 3)
        full = containment_digraph(family)
        reduced = hasse_diagram(family)
        assert set(reduced.edges) == set(nx.transitive_reduction(full).edges)

    def test_digraph_is_acyclic(self):
        graph = containment_digraph(canonical_family(6, 3))
        assert nx.is_directed_acyclic_graph(graph)

    def test_source_is_loosest_sink_is_hardest(self):
        graph = figure1_hasse()
        sources = [node for node in graph if graph.in_degree(node) == 0]
        sinks = [node for node in graph if graph.out_degree(node) == 0]
        assert sources == [(0, 6)]
        assert sinks == [(2, 2)]

    def test_chains_end_at_hardest(self):
        graph = figure1_hasse()
        for chain in chains(graph):
            assert chain[0] == (0, 6)
            assert chain[-1] == (2, 2)

    def test_incomparable_pairs_in_canonical_family(self):
        pairs = incomparable_pairs(canonical_family(6, 3))
        labels = {
            tuple(sorted([a.parameters[2:], b.parameters[2:]])) for a, b in pairs
        }
        assert ((0, 3), (1, 4)) in labels

    def test_nodes_carry_task_attribute(self):
        graph = figure1_hasse()
        for node in graph.nodes:
            task = graph.nodes[node]["task"]
            assert task.parameters[2:] == node


class TestBitmaskContainment:
    """The bitmask path must reproduce the legacy pairwise relation."""

    @pytest.mark.parametrize("n,m", [(6, 3), (8, 4), (7, 2), (9, 3), (5, 5)])
    def test_canonical_family_identical(self, n, m):
        family = canonical_family(n, m)
        fast = containment_digraph(family)
        slow = containment_digraph(family, method="legacy")
        assert set(fast.nodes) == set(slow.nodes)
        assert set(fast.edges) == set(slow.edges)

    def test_full_family_with_synonyms_identical(self):
        from repro.core import feasible_bound_pairs

        tasks = [
            SymmetricGSBTask(6, 3, low, high)
            for low, high in feasible_bound_pairs(6, 3)
        ]
        fast = containment_digraph(tasks)
        slow = containment_digraph(tasks, method="legacy")
        assert set(fast.nodes) == set(slow.nodes)
        assert set(fast.edges) == set(slow.edges)

    def test_mixed_families_get_no_cross_edges(self):
        tasks = canonical_family(4, 2) + canonical_family(5, 3)
        fast = containment_digraph(tasks)
        slow = containment_digraph(tasks, method="legacy")
        assert set(fast.edges) == set(slow.edges)

    def test_hasse_diagram_identical(self):
        family = canonical_family(8, 4)
        assert set(hasse_diagram(family).edges) == set(
            hasse_diagram(family, method="legacy").edges
        )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            containment_digraph(canonical_family(6, 3), method="nope")

    def test_node_attributes_preserved(self):
        graph = containment_digraph(canonical_family(6, 3))
        for node in graph.nodes:
            assert graph.nodes[node]["task"].parameters[2:] == node


class TestOtherFamilies:
    def test_hasse_for_other_parameters_is_dag_with_hardest_sink(self):
        for n, m in [(8, 4), (5, 2), (7, 3)]:
            graph = hasse_diagram(canonical_family(n, m))
            assert nx.is_directed_acyclic_graph(graph)
            sinks = [node for node in graph if graph.out_degree(node) == 0]
            assert sinks == [tuple(hardest(n, m).parameters[2:])]
