"""Tests for the prefix-sharing exploration engine.

The load-bearing property is *equivalence*: for every named workload the
engine must produce exactly the multiset of decided output vectors the
legacy re-execution explorer produces, in exact mode even in the same
order.  On top of that: budget semantics, memoization actually pruning,
symmetry canonicalization of participant subsets, runtime forking, and the
batch API.
"""

from collections import Counter

import pytest

from repro.shm import (
    ExplorationBudgetExceeded,
    Nop,
    PrefixSharingEngine,
    RoundRobinScheduler,
    Runtime,
    Snapshot,
    Write,
    available_specs,
    canonical_participant_classes,
    count_interleavings,
    explore_decided_subsets,
    explore_interleavings,
    explore_many,
    explore_one,
    get_spec,
    order_isomorphism_class,
)
from repro.shm.engine import make_spec_runtime
from repro.shm.explore import _legacy_explore_interleavings

NAMED_SPECS = ("wsb", "election", "renaming", "wsb-grh")


def write_then_snapshot(ctx):
    yield Write("A", ctx.identity)
    view = yield Snapshot("A")
    return tuple(view)


def make_runtime_factory(n, algorithm=write_then_snapshot):
    def factory():
        return Runtime(
            algorithm,
            list(range(1, n + 1)),
            RoundRobinScheduler(),
            arrays={"A": None},
        )

    return factory


class TestRuntimeFork:
    def test_fork_is_independent(self):
        runtime = make_runtime_factory(3)()
        runtime.step(0)
        fork = runtime.fork()
        assert fork.state_key() == runtime.state_key()
        fork.step(1)
        runtime.step(0)
        assert fork.state_key() != runtime.state_key()
        # The original decided from a solo view; the fork saw both writes.
        assert runtime.outputs[0] == (1, None, None)
        assert fork.outputs[0] is None

    def test_fork_preserves_oracle_commitment(self):
        factory = make_spec_runtime(get_spec("renaming"), 3)
        runtime = factory()
        runtime.step(0)
        fork = runtime.fork()
        for pid in (1, 2):
            runtime.step(pid)
            fork.step(pid)
        assert runtime.state_key() == fork.state_key()

    def test_fork_rejects_nondeterminism(self):
        import random

        rng = random.Random(0)

        def flaky(ctx):
            if rng.random() < 0.5:
                yield Nop()
            yield Write("A", ctx.identity)
            return 1

        from repro.shm import ProtocolError

        # Keep forking until the replay diverges from the original run.
        with pytest.raises(ProtocolError, match="not deterministic"):
            for _ in range(64):
                runtime = make_runtime_factory(2, flaky)()
                runtime.step(0)
                runtime.fork()


# The legacy explorer needs ~11 s for wsb-grh at n=3 (that slowness is the
# engine's raison d'etre), so the direct legacy comparisons cap it at n=2;
# the ISSUE-named specs run the full n <= 3 equivalence.
EQUIVALENCE_CASES = [
    (name, n)
    for name in NAMED_SPECS
    for n in (2, 3)
    if not (name == "wsb-grh" and n == 3)
]


class TestEquivalenceWithLegacy:
    @pytest.mark.parametrize("name,n", EQUIVALENCE_CASES)
    def test_exact_mode_matches_legacy_order(self, name, n):
        factory = make_spec_runtime(get_spec(name), n)
        legacy = [
            tuple(result.outputs)
            for result in _legacy_explore_interleavings(factory)
        ]
        engine = [
            tuple(result.outputs)
            for result in explore_interleavings(factory, engine=True)
        ]
        assert engine == legacy  # same runs, same lexicographic order

    @pytest.mark.parametrize("name,n", EQUIVALENCE_CASES)
    def test_memoized_counts_match_legacy_multiset(self, name, n):
        factory = make_spec_runtime(get_spec(name), n)
        legacy = Counter(
            tuple(result.outputs)
            for result in _legacy_explore_interleavings(factory)
        )
        engine = PrefixSharingEngine(factory)
        assert engine.decided_vectors(memoize=True) == legacy

    def test_memoization_preserves_counts(self):
        # Two processes, two commuting no-ops each: states merge heavily,
        # but the multiset must still be the full multinomial count.
        def two_nops(ctx):
            yield Nop()
            yield Nop()
            return 1

        factory = make_runtime_factory(2, two_nops)
        engine = PrefixSharingEngine(factory)
        decisions = engine.decided_vectors()
        assert sum(decisions.values()) == count_interleavings([2, 2])
        assert engine.stats.memo_hits > 0
        assert engine.stats.runs < count_interleavings([2, 2])

    def test_schedules_and_traces_survive_forking(self):
        factory = make_runtime_factory(2)
        legacy = {
            tuple(result.schedule())
            for result in _legacy_explore_interleavings(factory)
        }
        engine = {
            tuple(result.schedule())
            for result in explore_interleavings(factory)
        }
        assert engine == legacy == set(map(tuple, legacy))
        assert len(legacy) == count_interleavings([2, 2])


class TestBudgets:
    def test_max_runs_enforced(self):
        with pytest.raises(ExplorationBudgetExceeded):
            list(explore_interleavings(make_runtime_factory(3), max_runs=5))

    def test_max_runs_yields_exactly_budget_before_raising(self):
        produced = []
        with pytest.raises(ExplorationBudgetExceeded):
            for result in explore_interleavings(
                make_runtime_factory(2), max_runs=3
            ):
                produced.append(result)
        assert len(produced) == 3  # same semantics as the legacy explorer

    def test_depth_guard(self):
        def spinner(ctx):
            while True:
                yield Nop()

        with pytest.raises(ExplorationBudgetExceeded, match="non-terminating"):
            list(
                explore_interleavings(
                    make_runtime_factory(1, spinner), max_depth=20
                )
            )

    def test_decided_vectors_budgets(self):
        engine = PrefixSharingEngine(make_runtime_factory(3), max_runs=5)
        with pytest.raises(ExplorationBudgetExceeded):
            engine.decided_vectors(memoize=False)

    def test_engine_fits_budget_legacy_cannot(self):
        # The acceptance claim in miniature: with the same run budget the
        # engine's memoized mode completes a workload whose interleaving
        # count blows past the budget when every run must be materialized.
        def three_nops(ctx):
            for _ in range(3):
                yield Nop()
            return 1

        factory = make_runtime_factory(3, three_nops)
        total = count_interleavings([3, 3, 3])  # 1680
        budget = 500
        with pytest.raises(ExplorationBudgetExceeded):
            list(
                _legacy_explore_interleavings(factory, max_runs=budget)
            )
        engine = PrefixSharingEngine(factory, max_runs=budget)
        decisions = engine.decided_vectors(memoize=True)
        assert sum(decisions.values()) == total  # completed under budget


class TestSymmetryCanonicalization:
    def test_order_isomorphism_class(self):
        assert order_isomorphism_class((3, 9, 5)) == (0, 2, 1)
        assert order_isomorphism_class((1, 4, 2)) == (0, 2, 1)
        assert order_isomorphism_class((2,)) == (0,)

    def test_canonical_classes_cover_all_subsets(self):
        classes = canonical_participant_classes(4)
        assert [subset for subset, _ in classes] == [
            (0,),
            (0, 1),
            (0, 1, 2),
            (0, 1, 2, 3),
        ]
        assert sum(weight for _, weight in classes) == 2**4 - 1

    @pytest.mark.parametrize("name", NAMED_SPECS)
    def test_subset_profiles_match_full_enumeration(self, name):
        factory = make_spec_runtime(get_spec(name), 3)
        full = explore_decided_subsets(factory, assume_symmetric=False)
        pruned = explore_decided_subsets(factory, assume_symmetric=True)
        assert pruned.value_multisets() == full.value_multisets()
        assert pruned.total_runs == full.total_runs
        assert pruned.stats.subsets_pruned == (2**3 - 1) - 3

    def test_canonical_subsets_rejects_unsorted_identities(self):
        from repro.core.named import weak_symmetry_breaking
        from repro.shm import check_algorithm_exhaustive

        spec = get_spec("wsb")
        with pytest.raises(ValueError, match="ascending identity"):
            check_algorithm_exhaustive(
                weak_symmetry_breaking(3),
                spec.algorithm_factory(3),
                3,
                system_factory=spec.system_factory(3),
                identities=(3, 1, 2),
                canonical_subsets=True,
            )

    def test_exhaustive_check_canonical_subsets_agrees(self):
        from repro.algorithms import (
            figure2_renaming,
            figure2_system_factory,
            figure2_task,
        )
        from repro.shm import check_algorithm_exhaustive

        full = check_algorithm_exhaustive(
            figure2_task(3),
            figure2_renaming(),
            3,
            system_factory=figure2_system_factory(3, seed=0),
        )
        fast = check_algorithm_exhaustive(
            figure2_task(3),
            figure2_renaming(),
            3,
            system_factory=figure2_system_factory(3, seed=0),
            canonical_subsets=True,
        )
        assert full.ok and fast.ok
        assert fast.runs < full.runs


class TestBatchAPI:
    def test_registry(self):
        assert set(NAMED_SPECS) <= set(available_specs())
        with pytest.raises(KeyError, match="unknown exploration task"):
            get_spec("nope")

    def test_explore_one_validates(self):
        good = explore_one("renaming", 3)
        assert good.violations == 0
        assert good.runs == 1680
        refuted = explore_one("election", 3)
        assert refuted.violations > 0  # Theorem 11: candidate is refuted

    def test_explore_many_serial(self):
        results = explore_many(["wsb", "renaming"], [2, 3])
        assert [(r.name, r.n) for r in results] == [
            ("wsb", 2),
            ("wsb", 3),
            ("renaming", 2),
            ("renaming", 3),
        ]
        assert all(result.violations == 0 for result in results)

    def test_explore_many_skips_too_small_n(self):
        results = explore_many(["wsb"], [1, 2])
        assert [(r.name, r.n) for r in results] == [("wsb", 2)]

    def test_explore_many_process_executor(self):
        serial = explore_many(["wsb"], [2, 3])
        parallel = explore_many(["wsb"], [2, 3], executor="process", max_workers=2)
        assert [(r.name, r.n, r.runs, r.distinct) for r in serial] == [
            (r.name, r.n, r.runs, r.distinct) for r in parallel
        ]


class TestRuntimeCores:
    """The engine is core-polymorphic; explore_one routes by name."""

    @pytest.mark.parametrize("name,n", [(s, n) for s in NAMED_SPECS for n in (2, 3)])
    def test_cores_agree(self, name, n):
        compiled = explore_one(name, n, core="compiled")
        generator = explore_one(name, n, core="generator")
        assert (compiled.runs, compiled.distinct, compiled.violations) == (
            generator.runs, generator.distinct, generator.violations
        )
        assert compiled.core == "compiled"
        assert generator.core == "generator"

    def test_unknown_core_rejected(self):
        with pytest.raises(ValueError, match="unknown runtime core"):
            explore_one("wsb", 2, core="quantum")
        with pytest.raises(ValueError, match="unknown runtime core"):
            explore_many(["wsb"], [2], core="quantum")

    def test_exhaustive_check_cores_agree(self):
        from repro.algorithms import (
            figure2_renaming,
            figure2_system_factory,
            figure2_task,
        )
        from repro.shm import check_algorithm_exhaustive

        compiled = check_algorithm_exhaustive(
            figure2_task(3),
            figure2_renaming(),
            3,
            system_factory=figure2_system_factory(3, seed=0),
            core="compiled",
        )
        generator = check_algorithm_exhaustive(
            figure2_task(3),
            figure2_renaming(),
            3,
            system_factory=figure2_system_factory(3, seed=0),
            core="generator",
        )
        assert compiled.ok and generator.ok
        assert compiled.runs == generator.runs

    def test_exhaustive_check_unknown_core(self):
        from repro.core.named import weak_symmetry_breaking
        from repro.shm import check_algorithm_exhaustive

        spec = get_spec("wsb")
        with pytest.raises(ValueError, match="unknown runtime core"):
            check_algorithm_exhaustive(
                weak_symmetry_breaking(2),
                spec.algorithm_factory(2),
                2,
                system_factory=spec.system_factory(2),
                core="quantum",
            )


class TestLoudPoolFallback:
    """explore_many's process-pool path must not swallow KeyError silently."""

    def test_genuinely_unregistered_name_raises(self):
        with pytest.raises(KeyError, match="unknown exploration task"):
            explore_many(["definitely-not-registered"], [2], executor="process")

    def test_worker_keyerror_warns_then_degrades(self, monkeypatch):
        import warnings as _warnings

        import repro.shm.engine as engine_module

        def exploding_job(name, n, options):
            raise KeyError(f"unknown exploration task {name!r} (worker side)")

        monkeypatch.setattr(engine_module, "_explore_job", exploding_job)

        class FakePool:
            def __init__(self, max_workers=None):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, *args):
                from concurrent.futures import Future

                future = Future()
                try:
                    future.set_result(fn(*args))
                except BaseException as error:  # noqa: BLE001
                    future.set_exception(error)
                return future

        monkeypatch.setattr(
            "concurrent.futures.ProcessPoolExecutor", FakePool
        )
        with pytest.warns(RuntimeWarning, match="could not resolve a spec"):
            results = explore_many(["wsb"], [2], executor="process")
        assert [(r.name, r.n, r.runs) for r in results] == [("wsb", 2, 2)]
