"""Tests for the Theorem 10 condition tables."""

from repro.analysis import (
    binomial_table,
    check_ram_theorem,
    render_binomial_table,
    solvable_wsb_values,
)


class TestTable:
    def test_rows_cover_range(self):
        rows = binomial_table(max_n=16)
        assert [row.n for row in rows] == list(range(2, 17))

    def test_known_values(self):
        rows = {row.n: row for row in binomial_table(max_n=12)}
        assert rows[6].gcd == 1 and rows[6].coprime and rows[6].wsb_solvable
        assert rows[8].gcd == 2 and not rows[8].coprime
        assert rows[9].gcd == 3 and rows[9].prime_power

    def test_wsb_matches_renaming_verdict(self):
        for row in binomial_table(max_n=24):
            assert row.wsb_solvable == row.renaming_2n2_solvable == row.coprime


class TestRamTheorem:
    def test_no_violations_up_to_256(self):
        assert check_ram_theorem(256) == []


class TestHelpers:
    def test_solvable_values_are_non_prime_powers(self):
        values = solvable_wsb_values(30)
        assert values == [
            6, 10, 12, 14, 15, 18, 20, 21, 22, 24, 26, 28, 30,
        ]

    def test_render(self):
        text = render_binomial_table(max_n=10)
        assert "gcd" in text
        assert "prime power" in text
        lines = text.splitlines()
        assert len(lines) == 2 + 1 + 9  # title + header + separator + rows
