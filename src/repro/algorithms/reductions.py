"""Declarative registry of every implemented task reduction.

Each :class:`Reduction` packages the target task, the protocol, and the
system (arrays + oracles) it runs in, so examples, tests and benchmarks can
iterate over the whole catalogue uniformly — the executable version of the
paper's Section 5/6 reduction map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.gsb import GSBTask
from ..core.named import (
    election,
    k_slot,
    k_weak_symmetry_breaking,
    perfect_renaming,
    renaming,
    weak_symmetry_breaking,
    x_bounded_homonymous_renaming,
)
from ..shm.runtime import Algorithm
from .adaptive_renaming import adaptive_renaming_algorithm
from .figure2 import (
    figure2_renaming,
    figure2_slot_task,
    figure2_system_factory,
    figure2_task,
)
from .from_perfect import (
    election_from_perfect_renaming,
    gsb_from_perfect_renaming,
    perfect_renaming_system_factory,
)
from .splitters import grid_system_factory, max_grid_name, moir_anderson_algorithm
from .trivial import (
    homonymous_renaming_algorithm,
    identity_renaming_algorithm,
    no_communication_algorithm,
)
from .wsb import (
    kwsb_from_renaming,
    renaming_2n2_from_wsb,
    renaming_oracle_system_factory,
    wsb_from_renaming,
    wsb_oracle_system_factory,
)

SystemFactory = Callable[[], tuple[dict, dict]]


@dataclass(frozen=True)
class Reduction:
    """One solvability/reduction result, packaged to run.

    Attributes:
        name: registry key.
        paper_ref: theorem/figure the reduction mechanizes.
        description: one-line statement.
        min_n: smallest process count the construction supports.
        target: task solved, as a function of n.
        algorithm: protocol factory, as a function of n.
        system: per-run system factory builder ``(n, seed) -> factory``.
        oracle: the task oracle the system provides, as a function of n,
            or None when the construction runs on registers/splitters
            alone.  The universe graph turns oracle-backed reductions
            into certified ``target -> oracle`` edges and oracle-free
            ones into register-solvability certificates.
    """

    name: str
    paper_ref: str
    description: str
    min_n: int
    target: Callable[[int], GSBTask]
    algorithm: Callable[[int], Algorithm]
    system: Callable[[int, int], SystemFactory]
    oracle: Callable[[int], GSBTask] | None = None


def _registers_only(n: int, seed: int) -> SystemFactory:
    return lambda: ({}, {})


def _renaming_array(n: int, seed: int) -> SystemFactory:
    return lambda: ({"RENAME": None}, {})


REDUCTIONS: dict[str, Reduction] = {}


def _register(reduction: Reduction) -> None:
    REDUCTIONS[reduction.name] = reduction


_register(
    Reduction(
        name="identity-renaming",
        paper_ref="Section 5.2",
        description="(2n-1)-renaming with no communication: output own identity",
        min_n=1,
        target=lambda n: renaming(n, 2 * n - 1),
        algorithm=lambda n: identity_renaming_algorithm(),
        system=_registers_only,
    )
)

_register(
    Reduction(
        name="homonymous-renaming-x2",
        paper_ref="Corollary 2",
        description="2-bounded homonymous renaming: decide ceil(id/2)",
        min_n=2,
        target=lambda n: x_bounded_homonymous_renaming(n, 2),
        algorithm=lambda n: homonymous_renaming_algorithm(2),
        system=_registers_only,
    )
)

_register(
    Reduction(
        name="adaptive-renaming",
        paper_ref="Theorems 1-2 substrate",
        description="snapshot-based (2p-1)-renaming from registers",
        min_n=1,
        target=lambda n: renaming(n, 2 * n - 1),
        algorithm=lambda n: adaptive_renaming_algorithm(),
        system=_renaming_array,
    )
)

_register(
    Reduction(
        name="moir-anderson-grid",
        paper_ref="background substrate",
        description="splitter-grid renaming into [1..n(n+1)/2]",
        min_n=1,
        target=lambda n: renaming(n, max_grid_name(n)),
        algorithm=lambda n: moir_anderson_algorithm(),
        system=lambda n, seed: grid_system_factory(n),
    )
)

_register(
    Reduction(
        name="figure2-slot-renaming",
        paper_ref="Figure 2 / Theorem 12",
        description="(n+1)-renaming from the (n-1)-slot task plus one snapshot",
        min_n=2,
        target=figure2_task,
        algorithm=lambda n: figure2_renaming(),
        system=lambda n, seed: figure2_system_factory(n, seed),
        oracle=figure2_slot_task,
    )
)

_register(
    Reduction(
        name="wsb-from-2n2-renaming",
        paper_ref="Section 5.3",
        description="WSB from (2n-2)-renaming by name parity",
        min_n=2,
        target=lambda n: weak_symmetry_breaking(n),
        algorithm=lambda n: wsb_from_renaming(),
        system=lambda n, seed: renaming_oracle_system_factory(n, 2 * n - 2, seed),
        oracle=lambda n: renaming(n, 2 * n - 2),
    )
)

_register(
    Reduction(
        name="2n2-renaming-from-wsb",
        paper_ref="Section 6 / [29]",
        description="(2n-2)-renaming from WSB via two-sided adaptive renaming",
        min_n=2,
        target=lambda n: renaming(n, 2 * n - 2),
        algorithm=lambda n: renaming_2n2_from_wsb(),
        system=lambda n, seed: wsb_oracle_system_factory(n, seed),
        oracle=weak_symmetry_breaking,
    )
)

_register(
    Reduction(
        name="kwsb-from-renaming",
        paper_ref="Corollary 4",
        description="2-WSB from 2(n-2)-renaming with no further communication",
        min_n=4,
        target=lambda n: k_weak_symmetry_breaking(n, 2),
        algorithm=lambda n: kwsb_from_renaming(n, 2),
        system=lambda n, seed: renaming_oracle_system_factory(n, 2 * (n - 2), seed),
        oracle=lambda n: renaming(n, 2 * (n - 2)),
    )
)

_register(
    Reduction(
        name="election-from-perfect",
        paper_ref="Theorem 8 (asymmetric)",
        description="election from perfect renaming: name 1 leads",
        min_n=2,
        target=election,
        algorithm=lambda n: election_from_perfect_renaming(n),
        system=lambda n, seed: perfect_renaming_system_factory(n, seed),
        oracle=perfect_renaming,
    )
)

_register(
    Reduction(
        name="slot-from-perfect",
        paper_ref="Theorem 8 (symmetric)",
        description="(n-1)-slot task from perfect renaming by folding names mod n-1",
        min_n=3,
        target=lambda n: k_slot(n, n - 1),
        algorithm=lambda n: gsb_from_perfect_renaming(k_slot(n, n - 1)),
        system=lambda n, seed: perfect_renaming_system_factory(n, seed),
        oracle=perfect_renaming,
    )
)

_register(
    Reduction(
        name="perfect-from-perfect",
        paper_ref="Theorem 8 (identity case)",
        description="perfect renaming from the perfect renaming oracle itself",
        min_n=1,
        target=perfect_renaming,
        algorithm=lambda n: gsb_from_perfect_renaming(perfect_renaming(n)),
        system=lambda n, seed: perfect_renaming_system_factory(n, seed),
        oracle=perfect_renaming,
    )
)


def _register_extended() -> None:
    """Registry entries added by the extension modules.

    Imported lazily to keep module-import order simple; the functions
    below close over the extension constructors.
    """
    from .figure2 import (
        figure2_register_system_factory,
        figure2_renaming_register_snapshot,
    )
    from .identity_reduction import (
        with_intermediate_renaming,
        wrapped_system_factory,
    )
    from .slot_question import (
        renaming_from_slot,
        renaming_target,
        slot_system_factory,
    )

    _register(
        Reduction(
            name="renaming-from-2-slot",
            paper_ref="Section 6 endpoint (k=2)",
            description="(2n-2)-renaming from the 2-slot task (= WSB route)",
            min_n=3,
            target=lambda n: renaming_target(n, 2),
            algorithm=lambda n: renaming_from_slot(n, 2),
            system=lambda n, seed: slot_system_factory(n, 2, seed),
            oracle=lambda n: k_slot(n, 2),
        )
    )
    _register(
        Reduction(
            name="figure2-register-snapshot",
            paper_ref="Figure 2 + Section 2.1 WLOG",
            description="Figure 2 with the snapshot implemented from registers",
            min_n=2,
            target=figure2_task,
            algorithm=lambda n: figure2_renaming_register_snapshot(),
            system=lambda n, seed: figure2_register_system_factory(n, seed),
            oracle=figure2_slot_task,
        )
    )
    _register(
        Reduction(
            name="theorem2-wrapped-identity-renaming",
            paper_ref="Theorems 1-2",
            description=(
                "identity renaming made comparison-based by an intermediate "
                "adaptive renaming stage"
            ),
            min_n=1,
            target=lambda n: renaming(n, 2 * n - 1),
            algorithm=lambda n: with_intermediate_renaming(
                identity_renaming_algorithm()
            ),
            system=lambda n, seed: wrapped_system_factory(lambda: ({}, {})),
        )
    )


_register_extended()


def reduction_names() -> list[str]:
    return sorted(REDUCTIONS)


def get_reduction(name: str) -> Reduction:
    if name not in REDUCTIONS:
        raise KeyError(
            f"unknown reduction {name!r}; known: {', '.join(reduction_names())}"
        )
    return REDUCTIONS[name]
