"""Experiment E-SERVE: the serving layer at query scale.

Workload: the read-optimized store backend and the HTTP query API as a
client sees them — cold point lookups against JSON shards vs the SQLite
pack, warm lookups out of the hot-node LRU, in-process service routing,
and real-socket QPS with keep-alive and ETag revalidation.  The store is
the full ``--max-n 20 --max-m 6`` rectangle from the paper's decision
pipeline, packed once per module.

The acceptance bar for the binary backend — a cold point lookup at least
10x faster than the JSON-shard cold load it replaces — is asserted here
directly (not just recorded), so a backend regression fails the bench
run rather than drifting past the baseline tolerance.

The tail-latency benches record p50/p99 per-request latency — under
plain concurrency, and under a mid-storm worker SIGKILL against the
pre-fork supervisor — via ``benchmark.extra_info`` keys ending in
``_seconds``; ``compare_baselines.py`` lifts those into pseudo-
benchmarks (``bench:key``) so the tail is baselined in CI next to the
means.
"""

import threading
import time

import pytest

from repro.serve import BackgroundServer, SupervisedServer, UniverseService
from repro.universe import UniverseStore, canonical_task_key
from repro.universe.persist import HOT_CELLS

#: The acceptance-criterion rectangle: ``--max-n 20 --max-m 6``.
MAX_N, MAX_M = 20, 6

#: Point-lookup target, canonicalized into the hardest built cell.
TASK = (MAX_N, MAX_M, 1, MAX_N)

#: Requests per timed burst in the HTTP QPS benches.
BURST = 50


@pytest.fixture(scope="module")
def root(tmp_path_factory):
    root = tmp_path_factory.mktemp("bench-serve") / "store"
    store = UniverseStore(root)
    store.build(MAX_N, MAX_M)
    store.pack()
    return root


def primed_keys(store, key):
    """Every hot-node LRU key a cold lookup of ``key`` primes.

    Computed once, outside any timed region: the JSON path primes the
    whole containing cell, the binary path just the requested node.
    """
    prefix = (str(store.root), store.fingerprint())
    if store.active_backend == "binary":
        return [prefix + key]
    return [
        prefix + (key[0], key[1], low, high)
        for low, high in store._cell_nodes(key[0], key[1])
    ]


def bench_serve_cold_json_point_lookup(benchmark, root):
    """Cold JSON-shard load: one lookup pays a whole-shard parse."""
    store = UniverseStore.open_readonly(root, backend="json")
    key = canonical_task_key(*TASK)
    keys = primed_keys(store, key)

    def cold():
        for entry in keys:
            HOT_CELLS.pop(entry)
        return store.node_at(*TASK)

    node = benchmark(cold)
    assert node is not None and node.key == key


def bench_serve_cold_binary_point_lookup(benchmark, root):
    """Cold pack lookup: one indexed SQLite row, no shard parse.

    Asserts the tentpole acceptance criterion in-line: the binary
    backend's cold point lookup is >= 10x faster than the JSON-shard
    cold load at the full 20x6 rectangle.
    """
    jstore = UniverseStore.open_readonly(root, backend="json")
    bstore = UniverseStore.open_readonly(root, backend="binary")
    key = canonical_task_key(*TASK)
    bstore.node_at(*TASK)  # open the pack before asking for keys
    assert bstore.active_backend == "binary"
    binary_keys = primed_keys(bstore, key)
    json_keys = primed_keys(jstore, key)

    def cold():
        for entry in binary_keys:
            HOT_CELLS.pop(entry)
        return bstore.node_at(*TASK)

    node = benchmark(cold)
    assert node is not None and node.key == key

    def best_of(fn, rounds=3, iterations=200):
        fn()  # warm the store-level memos outside the timing
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(iterations):
                fn()
            best = min(best, (time.perf_counter() - start) / iterations)
        return best

    def cold_json():
        for entry in json_keys:
            HOT_CELLS.pop(entry)
        return jstore.node_at(*TASK)

    json_seconds = best_of(cold_json)
    binary_seconds = best_of(cold)
    assert json_seconds >= 10 * binary_seconds, (
        f"binary cold point lookup must be >=10x faster than the JSON "
        f"shard cold load: json {json_seconds * 1e6:.1f}us vs binary "
        f"{binary_seconds * 1e6:.1f}us "
        f"({json_seconds / binary_seconds:.1f}x)"
    )


def bench_serve_warm_point_lookup(benchmark, root):
    """Warm lookup: served from the hot-node LRU, no file I/O at all."""
    store = UniverseStore.open_readonly(root, backend="binary")
    store.node_at(*TASK)  # prime

    node = benchmark(store.node_at, *TASK)
    assert node is not None


def bench_serve_service_decide(benchmark, root):
    """In-process service routing: decide without HTTP framing."""
    service = UniverseService.open(root, backend="binary")
    n, m, low, high = TASK
    query = {"n": str(n), "m": str(m), "low": str(low), "high": str(high)}

    response = benchmark(service.handle, "GET", "/decide", query, None, None)
    assert response.status == 200
    assert response.payload["source"] == "universe"


def bench_serve_http_qps(benchmark, root):
    """Real-socket QPS: a keep-alive burst of decide requests."""
    import http.client

    with BackgroundServer(root, backend="binary") as server:
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=30
        )
        n, m, low, high = TASK
        path = f"/decide?n={n}&m={m}&low={low}&high={high}"

        def burst():
            statuses = []
            for _ in range(BURST):
                connection.request("GET", path)
                response = connection.getresponse()
                response.read()
                statuses.append(response.status)
            return statuses

        statuses = benchmark(burst)
        connection.close()
    assert statuses == [200] * BURST


def bench_serve_http_etag_revalidation(benchmark, root):
    """A 304 burst: revalidation skips the body entirely."""
    import http.client

    with BackgroundServer(root, backend="binary") as server:
        n, m, low, high = TASK
        path = f"/decide?n={n}&m={m}&low={low}&high={high}"
        status, headers, _ = server.get(path)
        assert status == 200
        etag = headers["ETag"]

        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=30
        )

        def burst():
            statuses = []
            for _ in range(BURST):
                connection.request(
                    "GET", path, headers={"If-None-Match": etag}
                )
                response = connection.getresponse()
                body = response.read()
                statuses.append((response.status, body))
            return statuses

        statuses = benchmark(burst)
        connection.close()
    assert statuses == [(304, b"")] * BURST


def _percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    assert sorted_samples
    rank = round(q / 100.0 * (len(sorted_samples) - 1))
    return sorted_samples[rank]


def bench_serve_http_tail_latency_concurrent(benchmark, root):
    """p50/p99 per-request latency under a concurrent client storm.

    The mean QPS bench hides the tail; this one records per-request
    wall times across 4 keep-alive clients hammering one server and
    attaches the percentiles as ``extra_info`` for the baseline file.
    """
    import http.client

    clients, per_client = 4, 25
    n, m, low, high = TASK
    path = f"/decide?n={n}&m={m}&low={low}&high={high}"
    latencies: list[float] = []
    failures: list[int] = []

    with BackgroundServer(root, backend="binary") as server:

        def client() -> None:
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=30
            )
            try:
                samples = []
                for _ in range(per_client):
                    started = time.perf_counter()
                    connection.request("GET", path)
                    response = connection.getresponse()
                    response.read()
                    samples.append(time.perf_counter() - started)
                    if response.status != 200:
                        failures.append(response.status)
                latencies.extend(samples)
            finally:
                connection.close()

        def storm() -> None:
            threads = [
                threading.Thread(target=client) for _ in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)

        benchmark(storm)

    assert not failures, failures[:5]
    samples = sorted(latencies)
    benchmark.extra_info["p50_seconds"] = _percentile(samples, 50)
    benchmark.extra_info["p99_seconds"] = _percentile(samples, 99)


def bench_serve_tail_latency_under_worker_kill(benchmark, root):
    """p50/p99 latency while a supervisor worker is SIGKILL'd mid-storm.

    The chaos-resilience number: 2 pre-fork workers, fresh-connection
    clients, one worker killed a beat into the storm.  Requests that
    land on the dying worker's accepted connections surface as
    connection errors and are counted (not timed); every answered
    request must be a 200, and the recorded tail shows what the crash
    plus backoff restart cost the survivors.
    """
    n, m, low, high = TASK
    path = f"/decide?n={n}&m={m}&low={low}&high={high}"
    latencies: list[float] = []
    failures: list[int] = []
    connection_errors = [0]

    with SupervisedServer(root, workers=2, backend="binary") as server:

        def client() -> None:
            for _ in range(30):
                started = time.perf_counter()
                try:
                    status, _, _ = server.get(path)
                except OSError:
                    connection_errors[0] += 1
                    continue
                latencies.append(time.perf_counter() - started)
                if status != 200:
                    failures.append(status)

        def storm() -> None:
            threads = [threading.Thread(target=client) for _ in range(4)]
            for thread in threads:
                thread.start()
            time.sleep(0.2)
            victims = server.worker_pids()
            if victims:
                server.kill_worker(victims[0])
            for thread in threads:
                thread.join(timeout=120)

        # One round: the kill-and-restart cycle is the workload, and a
        # second round against an already-restarted pair would measure
        # a different (healthier) system.
        benchmark.pedantic(storm, rounds=1, iterations=1)

        # The parent reaps and restarts on a 50 ms poll: give the board
        # a moment to show the restart instead of racing it.
        server.wait_healthy(15.0)
        deadline = time.monotonic() + 10.0
        while server.restarts_total() < 1 and time.monotonic() < deadline:
            time.sleep(0.1)
        assert server.restarts_total() >= 1

    assert not failures, failures[:5]
    assert latencies, "every storm request failed"
    samples = sorted(latencies)
    benchmark.extra_info["p50_seconds"] = _percentile(samples, 50)
    benchmark.extra_info["p99_seconds"] = _percentile(samples, 99)
