"""Tests for decision-map search on protocol complexes."""

import pytest

from repro.core import (
    SymmetricGSBTask,
    election,
    perfect_renaming,
    renaming,
    weak_symmetry_breaking,
)
from repro.topology import (
    ISProtocolComplex,
    search_decision_map,
    verify_decision_map,
)


class TestPositiveControls:
    def test_3_renaming_n2_one_round(self):
        # <2,3,0,1> has a one-round comparison-based protocol:
        # solo -> 3, lower-of-two -> 1, higher -> 2 (up to symmetry).
        result = search_decision_map(renaming(2, 3), ISProtocolComplex(2, 1))
        assert result.solvable
        assert not verify_decision_map(
            renaming(2, 3), ISProtocolComplex(2, 1), result.decision_map
        )

    def test_loosest_task_always_solvable(self):
        # <n, m, 0, n> admits everything: any constant map works.
        result = search_decision_map(
            SymmetricGSBTask(3, 2, 0, 3), ISProtocolComplex(3, 1)
        )
        assert result.solvable

    def test_found_maps_verify(self):
        for task in [renaming(2, 3), SymmetricGSBTask(3, 3, 0, 2)]:
            complex_ = ISProtocolComplex(task.n, 1)
            result = search_decision_map(task, complex_)
            if result.solvable:
                assert verify_decision_map(task, complex_, result.decision_map) == []


class TestRefutations:
    def test_wsb_prime_power_n(self):
        # n = 2 and n = 3 are prime powers: WSB has no r-round protocol.
        for n, rounds in [(2, 1), (2, 2), (2, 3), (3, 1)]:
            result = search_decision_map(
                weak_symmetry_breaking(n), ISProtocolComplex(n, rounds)
            )
            assert not result.solvable, (n, rounds)

    def test_perfect_renaming_never(self):
        for n, rounds in [(2, 1), (2, 2), (3, 1)]:
            result = search_decision_map(
                perfect_renaming(n), ISProtocolComplex(n, rounds)
            )
            assert not result.solvable

    def test_election_never(self):
        for n, rounds in [(2, 1), (2, 2), (3, 1), (3, 2)]:
            result = search_decision_map(
                election(n), ISProtocolComplex(n, rounds)
            )
            assert not result.solvable

    def test_2n_minus_1_renaming_needs_more_than_one_round_at_n3(self):
        # A finding of this reproduction: no one-round comparison-based
        # protocol solves 5-renaming for n=3 (six canonical classes need
        # pairwise-distinct names but only five exist).
        result = search_decision_map(renaming(3, 5), ISProtocolComplex(3, 1))
        assert not result.solvable


class TestSearchMechanics:
    def test_result_metadata(self):
        result = search_decision_map(
            weak_symmetry_breaking(3), ISProtocolComplex(3, 1)
        )
        assert result.classes == 6
        assert result.facets == 13
        assert result.rounds == 1
        assert result.assignments_tried > 0

    def test_budget_enforced(self):
        with pytest.raises(RuntimeError, match="exceeded"):
            search_decision_map(
                weak_symmetry_breaking(3),
                ISProtocolComplex(3, 2),
                max_assignments=50,
            )

    def test_n_mismatch_rejected(self):
        with pytest.raises(ValueError, match="processes"):
            search_decision_map(weak_symmetry_breaking(4), ISProtocolComplex(3, 1))

    def test_verify_flags_bad_map(self):
        complex_ = ISProtocolComplex(2, 1)
        classes = set(complex_.canonical_classes().values())
        constant_map = {label: 1 for label in classes}
        problems = verify_decision_map(renaming(2, 3), complex_, constant_map)
        assert problems

    def test_verify_flags_missing_classes(self):
        complex_ = ISProtocolComplex(2, 1)
        problems = verify_decision_map(renaming(2, 3), complex_, {})
        assert any("unmapped" in problem for problem in problems)
