"""Combinatorial-topology substrate for the impossibility results.

Simplicial complexes, immediate-snapshot protocol complexes (standard
chromatic subdivisions), comparison-based canonical views, exhaustive
decision-map search, and the mechanized Theorem 11 election-impossibility
argument.
"""

from .decision import (
    DecisionSearchResult,
    facet_decisions,
    search_decision_map,
    verify_decision_map,
)
from .election import (
    ElectionImpossibilityReport,
    election_impossibility,
    forced_ridge_agreement,
)
from .is_complex import (
    ISProtocolComplex,
    one_round_states,
    ordered_bell_number,
    ordered_partitions,
)
from .simplicial import SimplicialComplex
from .views import (
    View,
    base_view,
    canonical_view,
    identities_in_view,
    is_solo_view,
    pids_in_view,
    render_view,
    round_view,
    view_size,
)

__all__ = [
    "DecisionSearchResult",
    "ElectionImpossibilityReport",
    "ISProtocolComplex",
    "SimplicialComplex",
    "View",
    "base_view",
    "canonical_view",
    "election_impossibility",
    "facet_decisions",
    "forced_ridge_agreement",
    "identities_in_view",
    "is_solo_view",
    "one_round_states",
    "ordered_bell_number",
    "ordered_partitions",
    "pids_in_view",
    "render_view",
    "round_view",
    "search_decision_map",
    "verify_decision_map",
    "view_size",
]
