"""The compiled protocol core: step tables + array-backed machine states.

The generator runtime (:mod:`repro.shm.runtime`) is the *reference
semantics* of the model: algorithms are Python generators, a fork rebuilds
generator state by replaying each process's result log (O(steps so far)
resumptions), and a state key recursively freezes the logs.  Both costs sit
on the hottest path in the repository — exhaustive exploration forks and
keys at every branch point.

This module commits to a canonical machine representation *once* and makes
every downstream operation a cheap structural one (the lex-leader move of
symmetry handling, applied to the runtime itself):

* :class:`CompiledProtocol` — a tracer/compiler that turns an algorithm
  into an explicit **step table**: a trie over per-process result
  histories.  The model's discipline (Section 2.2) makes an algorithm a
  deterministic function of its context and the operation results it
  received, so a trie node *is* a local state: it records the pending
  operation (pre-packed against the memory layout) and its out-edges map
  each possible operation result to the successor state.  Nodes are traced
  on demand — each distinct local state costs one generator replay ever,
  after which every run, fork and exploration that reaches it pays a dict
  lookup.  A replay whose emitted operations diverge from the recorded
  table is rejected with a clear :class:`ProtocolError`.

* :class:`MachineState` — the array-backed runtime state: per-pid program
  counters into the step table, one flat cell list for all shared arrays
  (:class:`MemoryLayout`), and packed oracle state (the committed value
  vector plus an arrival list and an acquired-bitmask per oracle).
  ``fork()`` is a handful of ``list.copy()`` calls — **no generator
  replay** — and ``state_key()`` is a small packed tuple instead of a
  recursive freeze walk.

Semantics notes (all verified by the differential suite in
``tests/shm/test_compiled_differential.py``):

* Written values are frozen (:func:`repro.shm.runtime.freeze_value`) once
  at compile time, so cells and snapshots are hashable without a per-key
  walk.  This is observationally identical under the model's existing
  discipline that written values are immutable (see
  :meth:`repro.shm.registers.SharedArray.clone`).
* Per-writer version counters are *not* part of the machine state: no
  operation exposes them to algorithms, so dropping them is sound and
  strictly increases memoization hits.
* Decided/crashed processes are keyed by outcome (the decided value /
  a crash sentinel), exactly like the generator runtime, so states that
  differ only in the history of a finished process still merge.
"""

from __future__ import annotations

from copy import deepcopy as _deepcopy
from typing import Any, Mapping, Sequence

from .ops import Invoke, Nop, Op, Read, Snapshot, Write, WriteCell
from .oracles import GSBOracle, OracleUsageError
from .registers import ArraySpec, RegisterPermissionError
from .runtime import (
    Algorithm,
    NonTerminationError,
    ProcessContext,
    ProtocolError,
    RunResult,
    Scheduler,
    StepAction,
    CrashAction,
    StopAction,
    TraceEvent,
    freeze_value,
)

__all__ = [
    "CompiledProtocol",
    "MachineState",
    "MemoryLayout",
    "ValueCanonicalizer",
    "compile_protocol",
]

#: Process-wide step-table counters, surfaced through
#: :func:`repro.core.cache_config.cache_stats` (registered below).
_TABLE_TOTALS = {
    "programs": 0,  # step tables compiled
    "nodes": 0,  # local states traced (post frame-merging)
    "replays": 0,  # generator replays paid to trace them
    "frame_merges": 0,  # history-trie nodes collapsed by frame signatures
    "table_imports": 0,  # pre-traced tables adopted by pool workers
}


def _register_table_counters() -> None:
    from ..core.cache_config import register_counters

    def _stats() -> dict:
        return dict(_TABLE_TOTALS)

    def _clear() -> None:
        for key in _TABLE_TOTALS:
            _TABLE_TOTALS[key] = 0

    try:
        register_counters("engine.step_tables", _stats, _clear)
    except ValueError:  # pragma: no cover - double import guard
        pass


_register_table_counters()

#: Program-counter sentinels (any non-negative value is a step-table node).
DECIDED = -1
CRASHED = -2

#: Cache-miss marker for :meth:`CompiledProtocol.stable_pc` (None is a
#: legitimate cached value there).
_UNTOKENED = object()

#: Packed opcodes of the step table's execution entries.
_OP_WRITE = 0  # (code, cell, frozen value)
_OP_READ = 1  # (code, cell)
_OP_SNAPSHOT = 2  # (code, start, stop)
_OP_INVOKE = 3  # (code, oracle index)
_OP_NOP = 4  # (code,)
_OP_GENERIC = 5  # (code, object name, method, args)
_OP_RAISE = 6  # (code, exception instance) — deferred execution error


class MemoryLayout:
    """Flat layout of the named shared arrays of one protocol system.

    Every array gets a contiguous slice of one cell list; the layout maps
    ``name -> (base, size, multi_writer)`` once so compiled step entries
    can address cells by integer offset.  Accepts the same ``arrays``
    mapping as :class:`repro.shm.runtime.Runtime` (bare initial values or
    :class:`repro.shm.registers.ArraySpec`).
    """

    __slots__ = ("n", "names", "base", "size", "multi_writer", "_specs")

    def __init__(self, n: int, arrays: Mapping[str, Any] | None = None):
        self.n = n
        self.names: list[str] = []
        self.base: dict[str, int] = {}
        self.size: dict[str, int] = {}
        self.multi_writer: dict[str, bool] = {}
        self._specs: dict[str, Any] = {}
        offset = 0
        for name, spec in (arrays or {}).items():
            if isinstance(spec, ArraySpec):
                size = self.n if spec.n is None else spec.n
                multi_writer = spec.multi_writer
            else:
                size = self.n
                multi_writer = False
            if size < 1:
                raise ValueError(
                    f"array {name!r} needs at least one cell, got n={size}"
                )
            initial = spec.initial if isinstance(spec, ArraySpec) else spec
            if isinstance(initial, (list, tuple)) and len(initial) != size:
                raise ValueError(
                    f"array {name!r}: {len(initial)} initial values for "
                    f"{size} cells"
                )
            self.names.append(name)
            self.base[name] = offset
            self.size[name] = size
            self.multi_writer[name] = multi_writer
            self._specs[name] = spec
            offset += size

    @property
    def cell_count(self) -> int:
        return sum(self.size[name] for name in self.names)

    def signature(self) -> tuple:
        """Structural identity: two layouts agree iff machines can share a
        compiled step table (same names, sizes and writer disciplines)."""
        return tuple(
            (name, self.size[name], self.multi_writer[name])
            for name in self.names
        )

    def initial_cells(self, arrays: Mapping[str, Any] | None = None) -> list:
        """A fresh flat cell list (values frozen once, at layout time).

        ``arrays`` may re-supply the initial-value mapping (e.g. a system
        factory's per-run output); its structure must match this layout.
        """
        source = self._specs if arrays is None else arrays
        if arrays is not None:
            probe = MemoryLayout(self.n, arrays)
            if probe.signature() != self.signature():
                raise ValueError(
                    f"array mapping {sorted(arrays)} does not match the "
                    f"compiled layout {sorted(self.names)}"
                )
        cells: list = []
        for name in self.names:
            spec = source[name]
            initial = spec.initial if isinstance(spec, ArraySpec) else spec
            size = self.size[name]
            if isinstance(initial, (list, tuple)):
                if len(initial) != size:
                    raise ValueError(
                        f"array {name!r}: {len(initial)} initial values for "
                        f"{size} cells"
                    )
                cells.extend(freeze_value(value) for value in initial)
            else:
                cells.extend([freeze_value(initial)] * size)
        return cells


class CompiledProtocol:
    """A step-table program compiled lazily from a generator algorithm.

    The table is a forest of per-pid tries over operation-result
    histories.  Node ``u`` records the pending operation reached after the
    result history spelled by the root-to-``u`` path (pre-packed against
    the :class:`MemoryLayout`), or a decision value for terminal nodes.
    Tracing is demand-driven: an edge miss replays the generator along the
    node's history — one replay per *distinct local state*, ever — and
    verifies en route that the emitted operations match the recorded ones,
    rejecting non-deterministic algorithms with :class:`ProtocolError`.

    One compiled program is shared by every :class:`MachineState` (and
    every fork) exploring the same ``(algorithm, identities, system
    shape)``, across schedules, crash patterns and oracle assignments
    alike — results index the trie, so differing oracle hand-outs simply
    populate different branches.
    """

    def __init__(
        self,
        algorithm: Algorithm,
        identities: Sequence[int],
        arrays: Mapping[str, Any] | None = None,
        objects: Mapping[str, Any] | None = None,
        frame_nodes: bool = False,
    ):
        n = len(identities)
        if n < 1:
            raise ValueError("need at least one process")
        if len(set(identities)) != n:
            raise ValueError(f"identities must be distinct, got {list(identities)}")
        self.algorithm = algorithm
        self.identities = tuple(identities)
        self.n = n
        self.layout = MemoryLayout(n, arrays)
        #: Object split: GSB oracles are packed into machine arrays; any
        #: other shared object rides a generic (clone()-based) path.
        self.oracle_names: list[str] = []
        self.generic_names: list[str] = []
        for name, obj in (objects or {}).items():
            if isinstance(obj, GSBOracle):
                self.oracle_names.append(name)
            else:
                self.generic_names.append(name)
        self._oracle_index = {
            name: index for index, name in enumerate(self.oracle_names)
        }
        # The step table, one entry per node across parallel lists.
        self.ops: list[Op | None] = []  #: pending op; None marks a decision
        self.exec_table: list[tuple | None] = []  #: packed execution entry
        self.decisions: list[Any] = []  #: frozen decision value (terminals)
        self.edges: list[dict[Any, int]] = []  #: frozen result -> child
        self.parents: list[int] = []  #: parent node (-1 at roots)
        self.sent: list[Any] = []  #: raw result received on the in-edge
        self.pids: list[int] = []  #: owning process of the node
        #: With ``frame_nodes`` the table is a DAG over *local states*
        #: rather than a trie over histories: newly-traced nodes whose
        #: suspended-generator frame signature (:mod:`.localstate`)
        #: matches an existing node merge into it, so states reached
        #: along different result histories share one program counter.
        #: Histories whose frames defy sound signing (exotic yield
        #: shapes, unfreezable locals) silently keep trie identity.
        self.frame_nodes = frame_nodes
        self._absmap: dict[Any, int] = {}
        self._node_sig: dict[int, Any] = {}  #: node -> frame signature
        self._stable_tokens: dict[int, bytes | None] = {}
        #: Node-count prefix shared with other processes via
        #: export/import (0 = nothing shared): ids below this bound mean
        #: the same local state in every process that imported the same
        #: table, which is what lets orbit-memo entries travel.
        self.shared_prefix = 0
        _TABLE_TOTALS["programs"] += 1
        self.roots: list[int] = [self._trace_root(pid) for pid in range(n)]

    # -- table growth ---------------------------------------------------

    def node_count(self) -> int:
        """Distinct local states traced so far (observability)."""
        return len(self.ops)

    def _context(self, pid: int) -> ProcessContext:
        return ProcessContext(pid=pid, identity=self.identities[pid], n=self.n)

    def _trace_root(self, pid: int) -> int:
        generator = self.algorithm(self._context(pid))
        try:
            op = next(generator)
        except StopIteration as stop:
            return self._add_node(pid, -1, None, None, decision=stop.value)
        return self._add_node(
            pid, -1, None, None, op=op,
            signature=self._frame_signature(pid, generator),
        )

    def _frame_signature(self, pid: int, generator: Any) -> Any | None:
        if not self.frame_nodes:
            return None
        from .localstate import generator_signature

        signature = generator_signature(generator, freeze_value)
        if signature is None:
            return None
        return (pid, signature)

    def _add_node(
        self,
        pid: int,
        parent: int,
        key: Any,
        raw_result: Any,
        op: Op | None = None,
        decision: Any = None,
        signature: Any = None,
    ) -> int:
        if op is None and decision is None:
            # Mirrors Runtime._decide: deciding None is a protocol error.
            raise ProtocolError(
                f"process {pid} terminated without deciding (returned None)"
            )
        node = len(self.ops)
        self.ops.append(op)
        self.exec_table.append(None if op is None else self._pack(pid, op))
        self.decisions.append(
            None if decision is None else freeze_value(decision)
        )
        self.edges.append({})
        self.parents.append(parent)
        self.sent.append(raw_result)
        self.pids.append(pid)
        if parent >= 0:
            self.edges[parent][key] = node
        if signature is not None:
            self._absmap[signature] = node
            self._node_sig[node] = signature
        _TABLE_TOTALS["nodes"] += 1
        return node

    def extend(self, parent: int, key: Any, raw_result: Any) -> int:
        """Trace the successor of ``parent`` under ``raw_result``.

        Replays the owning process's generator along the node's recorded
        history, checking at every hop that the emitted operation matches
        the compiled table (the determinism guarantee every other part of
        this module rests on), then records the new node.
        """
        pid = self.pids[parent]
        path: list[int] = []
        cursor = parent
        while cursor >= 0:
            path.append(cursor)
            cursor = self.parents[cursor]
        path.reverse()
        results = [self.sent[node] for node in path[1:]]
        results.append(raw_result)

        _TABLE_TOTALS["replays"] += 1
        generator = self.algorithm(self._context(pid))
        try:
            op = next(generator)
        except StopIteration:
            raise ProtocolError(
                f"process {pid} is not deterministic: replaying its result "
                "log decided immediately where the compiled table records "
                f"pending op {self.ops[path[0]]!r}"
            ) from None
        for node, result in zip(path, results):
            if op != self.ops[node]:
                raise ProtocolError(
                    f"process {pid} is not deterministic: replay produced "
                    f"{op!r} where the compiled step table records "
                    f"{self.ops[node]!r}"
                )
            try:
                op = generator.send(result)
            except StopIteration as stop:
                if node is not parent:
                    raise ProtocolError(
                        f"process {pid} is not deterministic: replaying its "
                        "result log ended in a decision before the compiled "
                        "table's pending op"
                    ) from None
                decided_sig = None
                if self.frame_nodes:
                    decided_sig = (pid, "decided", freeze_value(stop.value))
                    merged = self._merge_node(
                        parent, key, decided_sig, decision=stop.value
                    )
                    if merged is not None:
                        return merged
                return self._add_node(
                    pid, parent, key, raw_result,
                    decision=stop.value, signature=decided_sig,
                )
        signature = self._frame_signature(pid, generator)
        if signature is not None:
            merged = self._merge_node(parent, key, signature, op=op)
            if merged is not None:
                return merged
        return self._add_node(
            pid, parent, key, raw_result, op=op, signature=signature
        )

    def _merge_node(
        self, parent: int, key: Any, signature: Any,
        op: Op | None = None, decision: Any = None,
    ) -> int | None:
        """Route ``parent --key-->`` onto an existing local state, if any.

        Returns the merged node, or None when this local state is new.
        A signature collision whose pending operation disagrees means the
        frame abstraction mis-identified two states — that would corrupt
        every downstream count, so it fails loudly instead of merging.
        """
        existing = self._absmap.get(signature)
        if existing is None:
            return None
        if op is not None and self.ops[existing] != op:
            raise ProtocolError(
                f"frame-signature merge mismatch: states signed {signature!r} "
                f"record pending ops {self.ops[existing]!r} and {op!r}; "
                "the local-state analysis is unsound for this algorithm"
            )
        if decision is not None and self.decisions[existing] != freeze_value(
            decision
        ):
            raise ProtocolError(
                "frame-signature merge mismatch on decision values; "
                "the local-state analysis is unsound for this algorithm"
            )
        self.edges[parent][key] = existing
        _TABLE_TOTALS["frame_merges"] += 1
        return existing

    # -- table shipping (parent pre-trace -> pool workers) ---------------

    def table_signature(self) -> tuple:
        """Structural identity two programs must share to swap tables."""
        return (
            self.n,
            self.identities,
            self.layout.signature(),
            tuple(self.oracle_names),
            tuple(self.generic_names),
            self.frame_nodes,
        )

    def export_table(self) -> dict:
        """Picklable snapshot of the traced step table.

        Ships node data only — the algorithm's closures stay behind;
        the importer marries the data to its own (identically-built)
        program.  Frame signatures travel too (code objects are named by
        stable tokens, see :func:`repro.shm.localstate.code_token`), so
        importers keep merging new states consistently.
        """
        return {
            "signature": self.table_signature(),
            "ops": list(self.ops),
            "exec_table": list(self.exec_table),
            "decisions": list(self.decisions),
            "edges": [dict(edge) for edge in self.edges],
            "parents": list(self.parents),
            "sent": list(self.sent),
            "pids": list(self.pids),
            "roots": list(self.roots),
            "absmap": dict(self._absmap),
        }

    def import_table(self, data: Mapping[str, Any]) -> bool:
        """Adopt a pre-traced table exported by an identical program.

        Returns False (leaving this program untouched) when the export
        does not structurally match — the caller keeps its own lazily
        traced table, which is always correct, just colder.
        """
        if data.get("signature") != self.table_signature():
            return False
        if list(data["roots"]) != self.roots:
            return False
        if len(data["ops"]) < len(self.ops):
            return False
        self.ops = list(data["ops"])
        self.exec_table = list(data["exec_table"])
        self.decisions = list(data["decisions"])
        self.edges = [dict(edge) for edge in data["edges"]]
        self.parents = list(data["parents"])
        self.sent = list(data["sent"])
        self.pids = list(data["pids"])
        self._absmap = dict(data["absmap"])
        self._node_sig = {node: sig for sig, node in self._absmap.items()}
        self._stable_tokens = {}
        self.shared_prefix = len(self.ops)
        _TABLE_TOTALS["table_imports"] += 1
        return True

    def stable_pc(self, node: int) -> bytes | None:
        """Process-stable 16-byte token of a node's *local state*.

        Raw node ids are allocation order — two processes lazily tracing
        the same program in different exploration orders number the same
        local state differently, so ids cannot cross process boundaries.
        Frame signatures can: they name the local state itself (code
        token + offset + live locals), so their digest is the travel-safe
        program counter the cross-worker orbit memo keys on.  None means
        the node has no sound signature (``frame_nodes`` off, or the
        analysis bailed) and keys containing it must stay process-local.
        """
        token = self._stable_tokens.get(node, _UNTOKENED)
        if token is not _UNTOKENED:
            return token
        signature = self._node_sig.get(node)
        if signature is None:
            token = None
        else:
            import pickle
            from hashlib import blake2b

            try:
                blob = pickle.dumps(signature, protocol=4)
            except Exception:
                token = None
            else:
                token = blake2b(blob, digest_size=16).digest()
        self._stable_tokens[node] = token
        return token

    # -- packing --------------------------------------------------------

    def _pack(self, pid: int, op: Op) -> tuple:
        """Compile one pending operation against the memory layout.

        Ill-formed operations (unknown array, foreign-cell write, unknown
        object, bad oracle method) pack to a deferred ``_OP_RAISE`` entry
        so the error surfaces at *execution* time, exactly when the
        generator runtime would raise it.
        """
        layout = self.layout
        if isinstance(op, Write):
            error = self._address_error(op.array, pid)
            if error is not None:
                return (_OP_RAISE, error)
            return (
                _OP_WRITE,
                layout.base[op.array] + pid,
                freeze_value(op.value),
            )
        if isinstance(op, WriteCell):
            if op.array in layout.base and not layout.multi_writer[op.array]:
                return (
                    _OP_RAISE,
                    RegisterPermissionError(
                        f"array {op.array!r} is single-writer: process {pid} "
                        f"may not write cell {op.index}; create the array "
                        "with multi_writer=True"
                    ),
                )
            error = self._address_error(op.array, op.index)
            if error is not None:
                return (_OP_RAISE, error)
            return (
                _OP_WRITE,
                layout.base[op.array] + op.index,
                freeze_value(op.value),
            )
        if isinstance(op, Read):
            error = self._address_error(op.array, op.index)
            if error is not None:
                return (_OP_RAISE, error)
            return (_OP_READ, layout.base[op.array] + op.index)
        if isinstance(op, Snapshot):
            error = self._address_error(op.array, 0)
            if error is not None:
                return (_OP_RAISE, error)
            base = layout.base[op.array]
            return (_OP_SNAPSHOT, base, base + layout.size[op.array])
        if isinstance(op, Invoke):
            if op.obj in self._oracle_index:
                if op.method != GSBOracle.ACQUIRE:
                    return (
                        _OP_RAISE,
                        OracleUsageError(
                            f"GSBOracle supports only "
                            f"{GSBOracle.ACQUIRE!r}, got {op.method!r}"
                        ),
                    )
                return (_OP_INVOKE, self._oracle_index[op.obj])
            if op.obj in self.generic_names:
                return (_OP_GENERIC, op.obj, op.method, op.args)
            available = sorted(self.oracle_names + self.generic_names)
            return (
                _OP_RAISE,
                ProtocolError(
                    f"process {pid} invoked unknown object {op.obj!r}; "
                    f"available: {available}"
                ),
            )
        if isinstance(op, Nop):
            return (_OP_NOP,)
        return (
            _OP_RAISE,
            ProtocolError(f"process {pid} yielded a non-operation: {op!r}"),
        )

    def _address_error(self, array: str, index: int) -> Exception | None:
        if array not in self.layout.base:
            return KeyError(
                f"no shared array named {array!r}; declared arrays: "
                f"{sorted(self.layout.names)}"
            )
        if not 0 <= index < self.layout.size[array]:
            return IndexError(
                f"array {array!r} has cells 0..{self.layout.size[array] - 1}, "
                f"got {index}"
            )
        return None

    # -- machine construction -------------------------------------------

    def machine(
        self,
        scheduler: Scheduler | None = None,
        arrays: Mapping[str, Any] | None = None,
        objects: Mapping[str, Any] | None = None,
        max_steps: int = 1_000_000,
        record_trace: bool = False,
    ) -> "MachineState":
        """A fresh machine running this program (see :class:`MachineState`)."""
        return MachineState(
            self,
            scheduler=scheduler,
            arrays=arrays,
            objects=objects,
            max_steps=max_steps,
            record_trace=record_trace,
        )


def compile_protocol(
    algorithm: Algorithm,
    identities: Sequence[int],
    arrays: Mapping[str, Any] | None = None,
    objects: Mapping[str, Any] | None = None,
) -> CompiledProtocol:
    """Compile an algorithm + system shape into a shared step table."""
    return CompiledProtocol(algorithm, identities, arrays=arrays, objects=objects)


def _clone_object(obj: Any) -> Any:
    clone = getattr(obj, "clone", None)
    if callable(clone):
        return clone()
    return _deepcopy(obj)


class _MachineSchedulerState:
    """Adapter giving schedulers the observable state of a machine."""

    __slots__ = ("_machine",)

    def __init__(self, machine: "MachineState"):
        self._machine = machine

    @property
    def step(self) -> int:
        return self._machine.step_count

    @property
    def enabled(self) -> tuple[int, ...]:
        return tuple(self._machine.enabled_pids())

    def steps_taken(self, pid: int) -> int:
        return self._machine.per_pid_steps[pid]


class MachineState:
    """Array-backed runtime state over a :class:`CompiledProtocol`.

    Drop-in for :class:`repro.shm.runtime.Runtime` wherever exploration
    and the harness drive runs (``step``/``run``/``fork``/``state_key``/
    ``result``/``enabled_pids``), with the two costs the compiled core
    exists to remove:

    * ``fork()`` copies a few flat lists — O(state), zero generator work;
    * ``state_key()`` returns a packed tuple of program counters, decided
      outputs, flat cells and oracle arrival orders.

    ``record_trace`` defaults to *False* (the opposite of ``Runtime``):
    the exploration hot path neither needs nor wants per-fork trace
    copies.  Harness paths that validate traces pass ``True``.
    """

    __slots__ = (
        "program",
        "scheduler",
        "max_steps",
        "n",
        "identities",
        "outputs",
        "decided_at",
        "crashed",
        "step_count",
        "per_pid_steps",
        "trace",
        "record_trace",
        "_pc",
        "_cells",
        "_oracle_values",
        "_oracle_arrivals",
        "_oracle_acquired",
        "_generic",
    )

    def __init__(
        self,
        program: CompiledProtocol,
        scheduler: Scheduler | None = None,
        arrays: Mapping[str, Any] | None = None,
        objects: Mapping[str, Any] | None = None,
        max_steps: int = 1_000_000,
        record_trace: bool = False,
    ):
        self.program = program
        self.scheduler = scheduler
        self.max_steps = max_steps
        self.n = program.n
        self.identities = program.identities
        self.record_trace = record_trace
        self.trace: list[TraceEvent] = []
        self._cells = program.layout.initial_cells(arrays)

        objects = dict(objects or {})
        expected = set(program.oracle_names) | set(program.generic_names)
        if set(objects) != expected:
            raise ValueError(
                f"objects {sorted(objects)} do not match the compiled "
                f"program's objects {sorted(expected)}"
            )
        self._oracle_values: list[tuple] = []
        self._oracle_arrivals: list[list[int]] = []
        self._oracle_acquired: list[int] = []
        for name in program.oracle_names:
            oracle: GSBOracle = objects[name]
            self._oracle_values.append(tuple(oracle._values))
            self._oracle_arrivals.append(list(oracle._arrivals))
            mask = 0
            for pid in oracle._assigned:
                mask |= 1 << pid
            self._oracle_acquired.append(mask)
        self._generic = {name: objects[name] for name in program.generic_names}

        self.outputs: list[Any] = [None] * self.n
        self.decided_at: list[int | None] = [None] * self.n
        self.crashed: set[int] = set()
        self.step_count = 0
        self.per_pid_steps = [0] * self.n
        self._pc = list(program.roots)
        for pid, node in enumerate(self._pc):
            if program.ops[node] is None:
                # Communication-free decision: decided before any step.
                self.outputs[pid] = program.decisions[node]
                self.decided_at[pid] = 0
                self._pc[pid] = DECIDED

    # -- the runtime surface the engine and harness drive ----------------

    def enabled_pids(self) -> list[int]:
        """Processes that can still take a step."""
        return [pid for pid, node in enumerate(self._pc) if node >= 0]

    def step(self, pid: int) -> None:
        """Execute one step of ``pid``: run its pending packed operation,
        then advance its program counter along the matching table edge
        (tracing the successor on a first visit)."""
        node = self._pc[pid]
        if node < 0:
            if pid in self.crashed:
                raise ProtocolError(f"process {pid} is crashed and cannot step")
            raise ProtocolError(
                f"process {pid} already decided and cannot step"
            )
        program = self.program
        entry = program.exec_table[node]
        code = entry[0]
        cells = self._cells
        if code == _OP_WRITE:
            cells[entry[1]] = entry[2]
            result = None
        elif code == _OP_SNAPSHOT:
            result = tuple(cells[entry[1] : entry[2]])
        elif code == _OP_READ:
            result = cells[entry[1]]
        elif code == _OP_INVOKE:
            index = entry[1]
            mask = 1 << pid
            if self._oracle_acquired[index] & mask:
                raise OracleUsageError(
                    f"process {pid} acquired twice from the "
                    f"{program.oracle_names[index]!r} oracle"
                )
            arrivals = self._oracle_arrivals[index]
            result = self._oracle_values[index][len(arrivals)]
            arrivals.append(pid)
            self._oracle_acquired[index] |= mask
        elif code == _OP_NOP:
            result = None
        elif code == _OP_GENERIC:
            result = self._generic[entry[1]].invoke(pid, entry[2], entry[3])
        else:  # _OP_RAISE: a deferred compile-time diagnosis
            raise entry[1]

        if self.record_trace:
            self.trace.append(
                TraceEvent(self.step_count, pid, program.ops[node], result)
            )
        self.step_count += 1
        self.per_pid_steps[pid] += 1

        key = freeze_value(result) if code == _OP_GENERIC else result
        child = program.edges[node].get(key)
        if child is None:
            child = program.extend(node, key, result)
        if program.ops[child] is None:
            self.outputs[pid] = program.decisions[child]
            self.decided_at[pid] = self.step_count
            self._pc[pid] = DECIDED
        else:
            self._pc[pid] = child

    def crash(self, pid: int) -> None:
        """Crash ``pid``: it takes no further steps."""
        if self._pc[pid] < 0:
            raise ProtocolError(
                f"cannot crash {pid}: already crashed or decided"
            )
        self.crashed.add(pid)
        self._pc[pid] = CRASHED

    def run(self) -> RunResult:
        """Drive the run under the machine's scheduler (cf. ``Runtime.run``)."""
        if self.scheduler is None:
            raise ProtocolError(
                "machine has no scheduler; construct it with one to run()"
            )
        state = _MachineSchedulerState(self)
        while self.enabled_pids():
            if self.step_count >= self.max_steps:
                raise NonTerminationError(
                    f"run exceeded {self.max_steps} steps with "
                    f"{self.enabled_pids()} still undecided"
                )
            action = self.scheduler.next_action(state)
            if isinstance(action, StopAction):
                break
            if isinstance(action, CrashAction):
                self.crash(action.pid)
                continue
            if isinstance(action, StepAction):
                self.step(action.pid)
                continue
            raise ProtocolError(f"scheduler returned unknown action {action!r}")
        return self.result()

    def fork(self) -> "MachineState":
        """Independent copy of this mid-run state: plain array copies.

        The step table is shared (it is append-only and common to every
        machine of one program); all mutable state is flat lists copied in
        O(state) — no generator replay, no recursion, no per-step work.
        """
        dup = MachineState.__new__(MachineState)
        dup.program = self.program
        dup.scheduler = (
            None if self.scheduler is None else _clone_object(self.scheduler)
        )
        dup.max_steps = self.max_steps
        dup.n = self.n
        dup.identities = self.identities
        dup.record_trace = self.record_trace
        dup.trace = list(self.trace) if self.record_trace else []
        dup._cells = self._cells.copy()
        dup._oracle_values = self._oracle_values
        dup._oracle_arrivals = [
            arrivals.copy() for arrivals in self._oracle_arrivals
        ]
        dup._oracle_acquired = self._oracle_acquired.copy()
        dup._generic = {
            name: _clone_object(obj) for name, obj in self._generic.items()
        }
        dup.outputs = self.outputs.copy()
        dup.decided_at = self.decided_at.copy()
        dup.crashed = set(self.crashed)
        dup.step_count = self.step_count
        dup.per_pid_steps = self.per_pid_steps.copy()
        dup._pc = self._pc.copy()
        return dup

    def state_key(self) -> tuple | None:
        """Packed hashable signature of the global state.

        Program counters stand in for whole result histories (a trie node
        *is* a local state), decided processes are keyed by their frozen
        output (so equal decisions merge across histories), and the flat
        cell list is already frozen.  Returns None when a generic shared
        object exposes no ``state_key`` (disabling memoization, as in the
        generator runtime).
        """
        generic_keys: tuple = ()
        if self._generic:
            keys = []
            for name in sorted(self._generic):
                obj = self._generic[name]
                if not hasattr(obj, "state_key"):
                    return None
                keys.append((name, obj.state_key()))
            generic_keys = tuple(keys)
        return (
            tuple(self._pc),
            tuple(self.outputs),
            tuple(self._cells),
            tuple(tuple(arrivals) for arrivals in self._oracle_arrivals),
            generic_keys,
        )

    # -- value-symmetry orbit quotient -----------------------------------

    def orbit_key(self) -> tuple | None:
        """Orbit signature of this state (coarser than :meth:`state_key`).

        Two refinements over the exact key, both sound for any program
        driven here (verified by the quotient differential suite):

        * **decided outputs are factored out** — no operation reads
          another process's output, so states differing only in decided
          values share their entire future; the exploration engine
          stores suffix counters and re-fills them from the querying
          state's own outputs;
        * **oracle arrival order collapses to the acquired-pid mask** —
          a GSB oracle's future hand-outs depend only on *how many*
          values it has handed out (the committed value vector is fixed
          per exploration), and each received value is already encoded
          in its receiver's program counter.

        Returns None when a generic shared object exposes no
        ``state_key`` (same contract as :meth:`state_key`).
        """
        generic_keys: tuple = ()
        if self._generic:
            keys = []
            for name in sorted(self._generic):
                obj = self._generic[name]
                if not hasattr(obj, "state_key"):
                    return None
                keys.append((name, obj.state_key()))
            generic_keys = tuple(keys)
        return (
            tuple(self._pc),
            tuple(self._cells),
            tuple(self._oracle_acquired),
            generic_keys,
        )

    #: ``probe_step`` marker: the probed step does not decide its process.
    STILL_RUNNING = object()

    def probe_step(self, pid: int) -> tuple[tuple, Any] | None:
        """Orbit key of the state ``step(pid)`` would reach — without
        forking or stepping.

        Returns ``(orbit key, decided value)`` where the decided value
        is :data:`STILL_RUNNING` when the step leaves ``pid`` undecided;
        or None when the successor cannot be probed structurally (an
        untraced table edge, a generic object, an oracle-misuse step
        that must raise for real) and the caller should fork + step.
        The returned key is byte-identical to the successor's
        :meth:`orbit_key` — the quotient tests pin that.
        """
        if self._generic:
            return None
        program = self.program
        node = self._pc[pid]
        if node < 0:
            return None
        entry = program.exec_table[node]
        code = entry[0]
        cells = self._cells
        new_cells = None
        new_acquired = None
        if code == _OP_WRITE:
            result = None
            cell = entry[1]
            if cells[cell] != entry[2]:
                new_cells = list(cells)
                new_cells[cell] = entry[2]
        elif code == _OP_SNAPSHOT:
            result = tuple(cells[entry[1] : entry[2]])
        elif code == _OP_READ:
            result = cells[entry[1]]
        elif code == _OP_INVOKE:
            index = entry[1]
            mask = 1 << pid
            if self._oracle_acquired[index] & mask:
                return None  # the real step raises OracleUsageError
            result = self._oracle_values[index][
                len(self._oracle_arrivals[index])
            ]
            new_acquired = list(self._oracle_acquired)
            new_acquired[index] |= mask
        elif code == _OP_NOP:
            result = None
        else:
            return None  # generic / deferred-raise: take the real path
        child = program.edges[node].get(result)
        if child is None:
            return None  # untraced successor: the real step must trace it
        if program.ops[child] is None:
            decided = program.decisions[child]
            new_pc = DECIDED
        else:
            decided = MachineState.STILL_RUNNING
            new_pc = child
        pcs = list(self._pc)
        pcs[pid] = new_pc
        return (
            (
                tuple(pcs),
                tuple(cells) if new_cells is None else tuple(new_cells),
                tuple(self._oracle_acquired)
                if new_acquired is None
                else tuple(new_acquired),
                (),
            ),
            decided,
        )

    def result(self) -> RunResult:
        return RunResult(
            n=self.n,
            identities=self.identities,
            outputs=list(self.outputs),
            decided_at=list(self.decided_at),
            crashed=set(self.crashed),
            trace=list(self.trace),
            steps=self.step_count,
        )


class ValueCanonicalizer:
    """Canonical relabeling of interchangeable written-but-undecided values.

    For specs whose oracle-assigned values are *interchangeable* — used
    only under equality comparisons, never arithmetic (declared per spec
    via a relabeler, see :class:`repro.shm.engine.ExplorationSpec`) — two
    states differing only by a permutation of the **free** values (those
    the oracle has finished handing out; values still pending hand-out
    are pinned by the committed vector) have isomorphic futures.  The
    canonical representative renumbers free values so their
    first-occurrence order — over the flat cell array, then over each
    live process's acquired-value history in pid order — is ascending.
    The permutation fixes the value *set* (it maps the seen free values
    onto their own sorted order), so it can never collide with values
    held invisibly (by crashed processes or in decided outputs), and it
    is idempotent: canonical states canonicalize to themselves (pinned by
    the quotient property tests).

    Program counters are canonicalized by *re-routing through the step
    table*: the node's recorded result history is relabeled and walked
    from the root (tracing on demand), so the canonical node's pending
    operation is re-derived by the algorithm itself — a relabeled
    history that diverges structurally fails loudly in
    :meth:`CompiledProtocol.extend`'s determinism check rather than
    merging unsoundly.
    """

    def __init__(self, program: CompiledProtocol, relabel: Any):
        self.program = program
        self.relabel = relabel
        if relabel.oracle not in program._oracle_index:
            raise ValueError(
                f"relabeler targets oracle {relabel.oracle!r}; program has "
                f"{program.oracle_names}"
            )
        self._oracle = program._oracle_index[relabel.oracle]
        #: node -> chronological tuple of oracle values its history holds
        self._node_values: dict[int, tuple] = {}
        #: (node, mapping key) -> canonical node
        self._canon_nodes: dict[tuple, int] = {}

    def canonical(self, machine: MachineState) -> tuple[tuple | None, dict | None]:
        """``(canonical orbit key, inverse mapping)`` for one state.

        The inverse mapping (canonical value -> this state's value; None
        for the identity) is what replays a memoized suffix counter back
        into this state's frame.
        """
        if machine._generic:
            # Generic shared objects are opaque to the relabeler: their
            # state keys could embed oracle values this pass would have to
            # rewrite.  Fall back to the unrelabeled orbit key (sound,
            # merely coarser-free).
            return machine.orbit_key(), None
        index = self._oracle
        values = machine._oracle_values[index]
        pending = set(values[len(machine._oracle_arrivals[index]) :])
        relabel = self.relabel
        seen: set = set()
        order: list = []
        for cell in machine._cells:
            for value in relabel.cell_values(cell):
                if value not in seen:
                    seen.add(value)
                    order.append(value)
        for node in machine._pc:
            if node < 0:
                continue
            for value in self._values_at(node):
                if value not in seen:
                    seen.add(value)
                    order.append(value)
        free = [value for value in order if value not in pending]
        mapping = {
            src: dst for src, dst in zip(free, sorted(free)) if src != dst
        }
        if not mapping:
            return machine.orbit_key(), None
        mapping_key = tuple(sorted(mapping.items()))
        pcs = tuple(
            node if node < 0 else self._canonical_node(node, mapping, mapping_key)
            for node in machine._pc
        )
        cells = tuple(
            relabel.map_cell(cell, mapping) for cell in machine._cells
        )
        inverse = {dst: src for src, dst in mapping.items()}
        return (
            (pcs, cells, tuple(machine._oracle_acquired), ()),
            inverse,
        )

    def _values_at(self, node: int) -> tuple:
        """Oracle values a live process at ``node`` has observed, in
        chronological order (cached per node, built incrementally)."""
        known = self._node_values.get(node)
        if known is not None:
            return known
        program = self.program
        parent = program.parents[node]
        if parent < 0:
            held: tuple = ()
        else:
            held = self._values_at(parent) + tuple(
                self.relabel.result_values(
                    program.ops[parent], program.sent[node]
                )
            )
        self._node_values[node] = held
        return held

    def _canonical_node(
        self, node: int, mapping: dict, mapping_key: tuple
    ) -> int:
        cached = self._canon_nodes.get((node, mapping_key))
        if cached is not None:
            return cached
        program = self.program
        path: list[int] = []
        cursor = node
        while cursor >= 0:
            path.append(cursor)
            cursor = program.parents[cursor]
        path.reverse()
        relabel = self.relabel
        current = path[0]  # the root: no history to relabel
        for successor in path[1:]:
            parent = current
            result = relabel.map_result(
                program.ops[parent], program.sent[successor], mapping
            )
            child = program.edges[parent].get(result)
            if child is None:
                child = program.extend(parent, result, result)
            current = child
        self._canon_nodes[(node, mapping_key)] = current
        return current
