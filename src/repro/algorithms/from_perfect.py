"""Theorem 8 as a protocol: any GSB task from perfect renaming.

Perfect renaming ``<n, n, 1, 1>`` is *universal* for the GSB family.  The
protocol is a single oracle invocation followed by local post-processing
(the output maps of :mod:`repro.core.universality`):

* symmetric tasks decide ``((name - 1) mod m) + 1``;
* asymmetric tasks decide ``V[name]`` for a predetermined legal vector V.

No registers are needed at all — universality is purely a property of the
name bijection.
"""

from __future__ import annotations

from typing import Callable

from ..core.gsb import GSBTask
from ..core.named import perfect_renaming
from ..core.universality import output_map
from ..shm.oracles import AssignmentStrategy, GSBOracle
from ..shm.ops import Invoke
from ..shm.runtime import Algorithm, ProcessContext

#: Name of the perfect-renaming oracle object.
PR_OBJECT = "PR"


def gsb_from_perfect_renaming(
    task: GSBTask, pr_object: str = PR_OBJECT
) -> Algorithm:
    """Protocol solving ``task`` in ``ASM[perfect renaming]`` (Theorem 8)."""
    decide = output_map(task)

    def algorithm(ctx: ProcessContext):
        name = yield Invoke(pr_object, GSBOracle.ACQUIRE)
        return decide(name)

    return algorithm


def election_from_perfect_renaming(n: int, pr_object: str = PR_OBJECT) -> Algorithm:
    """Election via Theorem 8: the process renamed 1 becomes the leader.

    A readable special case of the asymmetric construction (the
    deterministic output vector of election is ``[1, 2, ..., 2]``).
    """

    def algorithm(ctx: ProcessContext):
        name = yield Invoke(pr_object, GSBOracle.ACQUIRE)
        return 1 if name == 1 else 2

    return algorithm


def perfect_renaming_system_factory(
    n: int,
    seed: int = 0,
    strategy: AssignmentStrategy | None = None,
    pr_object: str = PR_OBJECT,
) -> Callable[[], tuple[dict, dict]]:
    """System factory: a fresh perfect-renaming oracle per run."""
    counter = [0]

    def factory() -> tuple[dict, dict]:
        counter[0] += 1
        oracle = GSBOracle(
            perfect_renaming(n), strategy=strategy, seed=seed + counter[0]
        )
        return {}, {pr_object: oracle}

    return factory
