"""Satellite: every registry reduction agrees with the universe graph.

For each :class:`repro.algorithms.reductions.Reduction` and every n where
both endpoints denote nodes of a test rectangle:

* oracle-backed reductions must appear as ``target -> oracle`` edges
  labeled with the registry name;
* oracle-free reductions (solved from registers/splitters alone) must
  appear as register-solvability certificates on their target node;
* solvability verdicts must be monotone along every edge of the graph —
  if the harder endpoint is wait-free solvable, the easier one cannot be
  classified unsolvable.

Asymmetric targets (election) have no symmetric synonym class and are
exempt by construction; perfect-from-perfect maps both endpoints to the
same node and contributes no edge.
"""

import pytest

from repro.algorithms import REDUCTIONS
from repro.core import Solvability
from repro.core.bounds import GSBSpecificationError
from repro.universe import EDGE_REDUCTION, build_rectangle, task_node_key

MAX_N = 4
MAX_M = 7  # fits (2n-1)-renaming up to n = 4

SOLVABLE = {Solvability.TRIVIAL.value, Solvability.SOLVABLE.value}
UNSOLVABLE = Solvability.UNSOLVABLE.value


@pytest.fixture(scope="module")
def rect():
    return build_rectangle(MAX_N, MAX_M)


def representable_pairs(rect, reduction):
    """(n, target_key, oracle_key) triples the rectangle can express."""
    triples = []
    for n in range(reduction.min_n, MAX_N + 1):
        try:
            target_key = task_node_key(rect, reduction.target(n))
            oracle_key = (
                task_node_key(rect, reduction.oracle(n))
                if reduction.oracle is not None
                else None
            )
        except GSBSpecificationError:
            continue
        triples.append((n, target_key, oracle_key))
    return triples


class TestRegistryGraphConsistency:
    @pytest.mark.parametrize("name", sorted(REDUCTIONS))
    def test_reduction_is_represented(self, rect, name):
        reduction = REDUCTIONS[name]
        edges = {
            (edge.source, edge.target)
            for edge in rect.edges((EDGE_REDUCTION,))
            if edge.label == name
        }
        expected_edges = 0
        expected_certificates = 0
        for n, target_key, oracle_key in representable_pairs(rect, reduction):
            if target_key is None:
                continue  # asymmetric target (election) or outside rectangle
            if reduction.oracle is None:
                assert name in rect.certificates.get(target_key, ())
                expected_certificates += 1
                continue
            if oracle_key is None or oracle_key == target_key:
                continue  # oracle not representable, or a self-reduction
            assert (target_key, oracle_key) in edges
            expected_edges += 1
        # Nothing beyond the expected endpoints sneaks into the graph.
        assert len(edges) == expected_edges
        # Every reduction shows up at least once, as an edge or a
        # certificate — except the pure self-reduction and the asymmetric
        # election target, which have nothing to materialize.
        if name not in ("perfect-from-perfect", "election-from-perfect"):
            assert expected_edges + expected_certificates > 0

    @pytest.mark.parametrize("name", sorted(REDUCTIONS))
    def test_verdicts_monotone_along_reduction(self, rect, name):
        """A solvable oracle cannot have an unsolvable target."""
        reduction = REDUCTIONS[name]
        if reduction.oracle is None:
            return
        for _, target_key, oracle_key in representable_pairs(rect, reduction):
            if target_key is None or oracle_key is None:
                continue
            oracle_verdict = rect.node(oracle_key).solvability
            target_verdict = rect.node(target_key).solvability
            assert not (
                oracle_verdict in SOLVABLE and target_verdict == UNSOLVABLE
            ), (name, oracle_key, target_key)


class TestGraphWideMonotonicity:
    def test_every_edge_is_verdict_monotone(self, rect):
        """Edge u -> v means v solves u: v solvable => u not unsolvable."""
        for edge in rect.edges():
            harder = rect.node(edge.target).solvability
            easier = rect.node(edge.source).solvability
            assert not (harder in SOLVABLE and easier == UNSOLVABLE), edge

    def test_wider_rectangle_stays_monotone(self):
        wide = build_rectangle(10, 5)
        for edge in wide.edges():
            harder = wide.node(edge.target).solvability
            easier = wide.node(edge.source).solvability
            assert not (harder in SOLVABLE and easier == UNSOLVABLE), edge
