"""Read-optimized binary backend for the universe store (the *pack*).

The JSON-shard layout of :mod:`repro.universe.persist` is built for
incremental rebuilds: one human-readable file per ``(n, m)`` cell, cheap
to recompute and diff.  It is the wrong shape for serving — answering
"what is the verdict of ``<20,6,0,3>``" from shards means parsing the
whole ``(20, 6)`` cell.  The pack is the same data compiled into a
single SQLite file with per-*node* rows, so a point lookup of a node,
certificate payload or close-open override is one indexed row read with
no JSON shard parse at all.

Layout of ``<store>/pack.sqlite``::

    meta(key, value)              -- pack schema version, store fingerprint,
                                  -- overrides-document envelope
    cells(n, m, version, node_count, edges)   -- one row per (n, m); the
                                  -- cell's containment edges ride as one
                                  -- JSON array (only full loads need them)
    nodes(n, m, low, high, idx, payload)      -- one row per universe node;
                                  -- payload is the node's exact shard dict
    certificates(n, m, cert_id, payload)      -- per-cell certificate payloads
    overrides(node_key, payload)  -- close-open override rows

The pack is a *compilation* of the JSON store, never the source of
truth.  It records a **fingerprint** of what it was compiled from (the
sorted cell list, the shard schema version and the overrides document);
readers compare that against the live store and treat a mismatch exactly
like corruption — fall back to the JSON shards, loudly.  Packs are
written to a staging file and atomically renamed, so a torn write never
leaves a half-valid pack behind; SQLite pages carry no checksums, so
mid-file bit rot beyond what SQLite's own header/format checks catch is
detected by the fingerprint/schema probes at open time, not per row.

Everything raised by SQLite (or by a malformed table shape) is wrapped
into :class:`PackError` so callers have a single except clause for
"this pack is unusable".
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from pathlib import Path
from typing import Iterable, Sequence

from ..testing.faults import FAULTS, FaultError

#: Bump when the pack layout changes; a mismatched pack reads as stale
#: and the reader falls back to the JSON shards until ``universe pack``
#: recompiles it.
PACK_SCHEMA_VERSION = 1

#: Conventional pack filename inside a universe store directory.
PACK_FILENAME = "pack.sqlite"

_DDL = """
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE cells (
    n INTEGER NOT NULL, m INTEGER NOT NULL,
    version INTEGER NOT NULL, node_count INTEGER NOT NULL,
    edges TEXT NOT NULL,
    PRIMARY KEY (n, m)
);
CREATE TABLE nodes (
    n INTEGER NOT NULL, m INTEGER NOT NULL,
    low INTEGER NOT NULL, high INTEGER NOT NULL,
    idx INTEGER NOT NULL, payload TEXT NOT NULL,
    PRIMARY KEY (n, m, low, high)
);
CREATE TABLE certificates (
    n INTEGER NOT NULL, m INTEGER NOT NULL,
    cert_id TEXT NOT NULL, payload TEXT NOT NULL,
    PRIMARY KEY (n, m, cert_id)
);
CREATE INDEX certificates_by_id ON certificates (cert_id);
CREATE TABLE overrides (node_key TEXT PRIMARY KEY, payload TEXT NOT NULL);
"""


class PackError(RuntimeError):
    """The pack file is missing a table, corrupt, or schema-stale."""


def store_fingerprint(
    cells: Sequence[tuple[int, int]],
    overrides_doc: dict,
    shard_schema_version: int,
) -> str:
    """Content fingerprint of a JSON store's *inputs* to pack compilation.

    Cells are pure functions of ``(n, m)`` at a fixed shard schema
    version, so the sorted cell list plus that version pins the cell
    content; the overrides document carries everything the close-open
    sweep added on top.  A pack whose recorded fingerprint differs from
    the live store's is stale by definition.
    """
    basis = {
        "shard_schema": shard_schema_version,
        "cells": [list(cell) for cell in sorted(cells)],
        "overrides": overrides_doc,
    }
    blob = json.dumps(basis, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def write_pack(
    path: str | Path,
    cell_payloads: Iterable[dict],
    overrides_doc: dict,
    fingerprint: str,
) -> dict[str, int]:
    """Compile shard payloads (+ overrides) into a pack file, atomically.

    ``cell_payloads`` are exactly the dicts the JSON shards hold
    (:func:`repro.universe.persist.cell_to_payload` output); the pack
    stores each node/certificate/override as its own row so reads are
    point lookups.  Returns summary counts for the CLI report.
    """
    path = Path(path)
    staging = path.with_suffix(path.suffix + ".tmp")
    if staging.exists():
        staging.unlink()
    path.parent.mkdir(parents=True, exist_ok=True)
    counts = {"cells": 0, "nodes": 0, "edges": 0, "certificates": 0,
              "overrides": 0}
    connection = sqlite3.connect(staging)
    try:
        connection.executescript(_DDL)
        for payload in cell_payloads:
            n, m = payload["n"], payload["m"]
            edges = payload["edges"]
            connection.execute(
                "INSERT INTO cells (n, m, version, node_count, edges) "
                "VALUES (?, ?, ?, ?, ?)",
                (n, m, payload["version"], len(payload["nodes"]),
                 json.dumps(edges)),
            )
            connection.executemany(
                "INSERT INTO nodes (n, m, low, high, idx, payload) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    (n, m, raw["key"][2], raw["key"][3], idx, json.dumps(raw))
                    for idx, raw in enumerate(payload["nodes"])
                ),
            )
            connection.executemany(
                "INSERT INTO certificates (n, m, cert_id, payload) "
                "VALUES (?, ?, ?, ?)",
                (
                    (n, m, cert_id, json.dumps(cert))
                    for cert_id, cert in payload.get("certificates", {}).items()
                ),
            )
            counts["cells"] += 1
            counts["nodes"] += len(payload["nodes"])
            counts["edges"] += len(edges)
            counts["certificates"] += len(payload.get("certificates", {}))
        rows = overrides_doc.get("overrides", {})
        connection.executemany(
            "INSERT INTO overrides (node_key, payload) VALUES (?, ?)",
            ((key, json.dumps(row)) for key, row in sorted(rows.items())),
        )
        counts["overrides"] = len(rows)
        envelope = {
            key: value for key, value in overrides_doc.items()
            if key != "overrides"
        }
        connection.executemany(
            "INSERT INTO meta (key, value) VALUES (?, ?)",
            (
                ("version", str(PACK_SCHEMA_VERSION)),
                ("fingerprint", fingerprint),
                ("overrides_envelope", json.dumps(envelope)),
            ),
        )
        connection.commit()
    finally:
        connection.close()
    os.replace(staging, path)
    return counts


class UniversePack:
    """Read-only view of a pack file with O(1) point lookups.

    Opening validates the pack schema version and reads the fingerprint;
    both SQLite-level corruption and shape problems surface as
    :class:`PackError`, at open time where SQLite's header checks catch
    them, or lazily from any accessor for deeper damage.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        try:
            # check_same_thread off: packs are read-only and the serving
            # layer opens them on the main thread but reads from the
            # event-loop thread.
            self._connection = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True, check_same_thread=False
            )
            version = self._meta("version")
        except sqlite3.Error as error:
            raise PackError(f"unreadable pack {self.path}: {error}") from error
        if version is None or not version.isdigit():
            raise PackError(f"pack {self.path} has no schema version")
        if int(version) != PACK_SCHEMA_VERSION:
            raise PackError(
                f"pack {self.path} has schema version {version}, expected "
                f"{PACK_SCHEMA_VERSION}; re-run `universe pack`"
            )
        self.fingerprint = self._meta("fingerprint") or ""

    # -- plumbing -------------------------------------------------------

    def _rows(self, sql: str, params: tuple = ()) -> list[tuple]:
        try:
            if FAULTS.active:
                # Chaos seam: an armed handler raises sqlite3.Error (or
                # PackError directly) to exercise the loud JSON fallback.
                FAULTS.fire("backend.pack.read", sql=sql, params=params)
            return self._connection.execute(sql, params).fetchall()
        except (sqlite3.Error, FaultError) as error:
            raise PackError(f"pack read failed ({error})") from error

    def _meta(self, key: str) -> str | None:
        rows = self._rows("SELECT value FROM meta WHERE key = ?", (key,))
        return rows[0][0] if rows else None

    @staticmethod
    def _loads(blob: str) -> dict:
        if FAULTS.active:
            # Chaos seam: corrupting the blob here simulates a torn pack
            # row exactly where a real one would surface.
            injected = FAULTS.fire("backend.pack.row", payload=blob)
            if injected is not None:
                blob = injected
        try:
            value = json.loads(blob)
        except ValueError as error:
            raise PackError(f"corrupt pack row ({error})") from error
        if not isinstance(value, (dict, list)):
            raise PackError("corrupt pack row (wrong JSON shape)")
        return value

    def close(self) -> None:
        self._connection.close()

    # -- point lookups --------------------------------------------------

    def cells(self) -> list[tuple[int, int]]:
        """Every packed ``(n, m)``, ascending."""
        return sorted(
            (row[0], row[1]) for row in self._rows("SELECT n, m FROM cells")
        )

    def has_cell(self, n: int, m: int) -> bool:
        return bool(
            self._rows("SELECT 1 FROM cells WHERE n = ? AND m = ?", (n, m))
        )

    def node_payload(self, n: int, m: int, low: int, high: int) -> dict | None:
        """One node's exact shard dict, or None — a single row read."""
        rows = self._rows(
            "SELECT payload FROM nodes "
            "WHERE n = ? AND m = ? AND low = ? AND high = ?",
            (n, m, low, high),
        )
        return self._loads(rows[0][0]) if rows else None

    def cell_node_payloads(self, n: int, m: int) -> list[dict] | None:
        """All node dicts of one cell in shard order; None if unpacked."""
        if not self.has_cell(n, m):
            return None
        rows = self._rows(
            "SELECT payload FROM nodes WHERE n = ? AND m = ? ORDER BY idx",
            (n, m),
        )
        return [self._loads(row[0]) for row in rows]

    def certificate_payload(self, certificate_id: str) -> dict | None:
        """A certificate payload by content-hash id (indexed lookup)."""
        rows = self._rows(
            "SELECT payload FROM certificates WHERE cert_id = ? LIMIT 1",
            (certificate_id,),
        )
        return self._loads(rows[0][0]) if rows else None

    def override_row(self, node_key: str) -> dict | None:
        """The close-open override for one ``"n,m,l,u"`` key, or None."""
        rows = self._rows(
            "SELECT payload FROM overrides WHERE node_key = ?", (node_key,)
        )
        return self._loads(rows[0][0]) if rows else None

    # -- full reconstruction (load paths, differential tests) -----------

    def cell_payload(self, n: int, m: int) -> dict | None:
        """The cell's shard payload, reconstructed byte-for-byte."""
        cell_rows = self._rows(
            "SELECT version, edges FROM cells WHERE n = ? AND m = ?", (n, m)
        )
        if not cell_rows:
            return None
        version, edges_blob = cell_rows[0]
        nodes = self.cell_node_payloads(n, m)
        certificates = {
            cert_id: self._loads(blob)
            for cert_id, blob in self._rows(
                "SELECT cert_id, payload FROM certificates "
                "WHERE n = ? AND m = ?",
                (n, m),
            )
        }
        return {
            "version": version,
            "n": n,
            "m": m,
            "nodes": nodes,
            "edges": self._loads(edges_blob),
            "certificates": certificates,
        }

    def overrides_doc(self) -> dict:
        """The overrides document the pack was compiled from."""
        envelope_blob = self._meta("overrides_envelope")
        doc = dict(self._loads(envelope_blob)) if envelope_blob else {}
        rows = {
            key: self._loads(blob)
            for key, blob in self._rows(
                "SELECT node_key, payload FROM overrides"
            )
        }
        if rows or doc:
            doc["overrides"] = rows
        return doc

    def stats(self) -> dict[str, int | str]:
        """Row counts plus the recorded fingerprint (CLI/service stats)."""
        count = lambda table: self._rows(f"SELECT COUNT(*) FROM {table}")[0][0]  # noqa: E731
        return {
            "path": str(self.path),
            "fingerprint": self.fingerprint,
            "cells": count("cells"),
            "nodes": count("nodes"),
            "certificates": count("certificates"),
            "overrides": count("overrides"),
        }
