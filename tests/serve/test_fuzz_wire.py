"""Malformed-wire-input fuzz: the parser must degrade, never wedge.

Every case in here feeds the server bytes a correct client would never
send — truncated request lines, header floods, garbage Content-Length,
half-closed sockets — and then asserts the two properties that matter:
the malformed connection gets a clean ``400`` (or a clean close), and
the *server keeps serving*: a well-formed request right after each abuse
still answers ``200``.  The transport ``malformed`` counter at
``/stats`` must account for the rejects.
"""

import socket

import pytest

from repro.serve import BackgroundServer
from repro.serve.http import MAX_BODY_BYTES, ServeConfig
from repro.universe import UniverseStore


@pytest.fixture(scope="module")
def root(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-fuzz") / "store"
    store = UniverseStore(root)
    store.build(6, 3)
    store.pack()
    return root


@pytest.fixture(scope="module")
def server(root):
    config = ServeConfig(idle_timeout=2.0)
    with BackgroundServer(root, backend="binary", config=config) as running:
        yield running


def send_raw(server, blob: bytes, timeout: float = 10.0) -> bytes:
    """One raw exchange: send bytes, read until the server closes."""
    with socket.create_connection(
        (server.host, server.port), timeout=timeout
    ) as sock:
        sock.sendall(blob)
        chunks = []
        try:
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        except TimeoutError:
            pass
    return b"".join(chunks)


def read_response(sock) -> tuple[int, bytes]:
    """Parse one response off a keep-alive socket: (status, body)."""
    blob = b""
    while b"\r\n\r\n" not in blob:
        chunk = sock.recv(65536)
        if not chunk:
            raise AssertionError(f"connection closed mid-head: {blob!r}")
        blob += chunk
    head, _, rest = blob.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            raise AssertionError("connection closed mid-body")
        rest += chunk
    return status, rest[:length]


def assert_server_still_serves(server) -> None:
    """The invariant every fuzz case must preserve."""
    status, _, payload = server.get("/healthz")
    assert status == 200 and payload["status"] == "ok"


WELL_FORMED = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"


class TestMalformedRequestLines:
    def test_truncated_request_line_then_close(self, server):
        # No newline ever arrives: the client gives up mid-line.  The
        # read sees EOF (IncompleteReadError territory) — the server
        # must shrug, not crash its connection task.
        blob = send_raw(server, b"GET /healthz HT")
        assert b"HTTP/1.1 200" not in blob
        assert_server_still_serves(server)

    def test_request_line_with_missing_version(self, server):
        blob = send_raw(server, b"GET /healthz\r\n\r\n")
        assert blob.startswith(b"HTTP/1.1 400")
        assert_server_still_serves(server)

    def test_request_line_with_too_many_parts(self, server):
        blob = send_raw(server, b"GET /a /b HTTP/1.1 extra\r\n\r\n")
        assert blob.startswith(b"HTTP/1.1 400")
        assert_server_still_serves(server)

    def test_binary_garbage_request(self, server):
        blob = send_raw(server, bytes(range(1, 128)) + b"\r\n\r\n")
        assert blob.startswith(b"HTTP/1.1 400")
        assert_server_still_serves(server)


class TestHeaderFloods:
    def test_too_many_headers_is_400_not_a_memory_balloon(self, server):
        config = ServeConfig()
        flood = b"".join(
            b"X-Flood-%d: x\r\n" % index
            for index in range(config.max_header_count + 8)
        )
        blob = send_raw(
            server, b"GET /healthz HTTP/1.1\r\n" + flood + b"\r\n"
        )
        assert blob.startswith(b"HTTP/1.1 400")
        assert b"headers" in blob
        assert_server_still_serves(server)

    def test_oversized_header_bytes_is_400(self, server):
        config = ServeConfig()
        huge = b"X-Huge: " + b"a" * (config.max_header_bytes + 1) + b"\r\n"
        blob = send_raw(
            server, b"GET /healthz HTTP/1.1\r\n" + huge + b"\r\n"
        )
        assert blob.startswith(b"HTTP/1.1 400")
        assert_server_still_serves(server)


class TestContentLengthAbuse:
    @pytest.mark.parametrize(
        "value", [b"banana", b"-5", b"+3", b"0x10", b"1e3"]
    )
    def test_non_numeric_or_negative_content_length_is_400(
        self, server, value
    ):
        blob = send_raw(
            server,
            b"POST /batch HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n",
        )
        assert blob.startswith(b"HTTP/1.1 400")
        assert b"Content-Length" in blob
        assert_server_still_serves(server)

    def test_declared_body_over_cap_is_rejected_before_reading(self, server):
        declared = MAX_BODY_BYTES + 1
        blob = send_raw(
            server,
            b"POST /batch HTTP/1.1\r\nContent-Length: %d\r\n\r\n" % declared,
        )
        assert blob.startswith(b"HTTP/1.1 400")
        assert_server_still_serves(server)

    def test_body_shorter_than_declared_then_close(self, server):
        # Client promises 100 bytes, sends 5, hangs up: readexactly
        # fails and the connection dies cleanly.
        blob = send_raw(
            server,
            b"POST /batch HTTP/1.1\r\nContent-Length: 100\r\n\r\nhello",
        )
        assert b"HTTP/1.1 200" not in blob
        assert_server_still_serves(server)


class TestKeepAliveAbuse:
    def test_garbage_mid_keep_alive_after_a_good_request(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
            status, _ = read_response(sock)
            assert status == 200
            # Same socket, now garbage: the server must answer 400 and
            # close, not desynchronize the keep-alive stream.
            sock.sendall(b"\x00\xff NOT HTTP AT ALL\r\n\r\n")
            status, _ = read_response(sock)
            assert status == 400
            assert sock.recv(65536) == b""  # closed after the 400
        assert_server_still_serves(server)

    def test_half_closed_socket_still_gets_its_response(self, server):
        # Client sends a full request then shuts down its write side:
        # the server must still answer on the read side.
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(WELL_FORMED)
            sock.shutdown(socket.SHUT_WR)
            status, body = read_response(sock)
            assert status == 200
            assert b"ok" in body
        assert_server_still_serves(server)

    def test_idle_keep_alive_socket_is_closed_by_the_server(self, server):
        # The module server's idle_timeout is 2s: a socket that sends
        # nothing must be closed, not held forever.
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.settimeout(10)
            assert sock.recv(65536) == b""  # server closes the idler
        assert_server_still_serves(server)


def test_malformed_counter_accounts_for_rejects(server):
    _, _, before = server.get("/stats")
    for blob in (
        b"ONEWORD\r\n\r\n",
        b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
    ):
        assert send_raw(server, blob).startswith(b"HTTP/1.1 400")
    _, _, after = server.get("/stats")
    grew = (
        after["transport"]["malformed"] - before["transport"]["malformed"]
    )
    assert grew >= 2
    assert after["transport"]["idle_closed"] >= 0  # block always present
