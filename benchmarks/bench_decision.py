"""Experiment E-DECIDE: the tiered decision pipeline and its caches.

Workload: ``decide()`` cold (all tiers run, a family row is assembled
for reduction closure) versus certificate-cache-warm (one shard lookup),
the structural tiers in isolation, a whole close-open sweep over a
rectangle (empirical search plus reduction-closure propagation), and a
full certificate replay pass.  The assertions pin the verdicts and the
certificate replays, so a pipeline regression fails the suite rather
than silently shifting the timings.
"""

import itertools

from repro.core import Solvability
from repro.decision import (
    CertificateCache,
    DecisionBudget,
    DecisionPipeline,
    check_certificate_payload,
    close_open,
    structural_verdict,
)
from repro.universe import UniverseStore, build_rectangle

#: Smoke rectangle for sweep/replay benches: small enough for CI, large
#: enough to hold theorem, padding and reduction certificates.
SMOKE_N, SMOKE_M = 10, 6

#: A bounded budget keeps the empirical tier deterministic in CI.
SMOKE_BUDGET = DecisionBudget(max_rounds=1, max_assignments=50_000)


def bench_decide_cold(benchmark):
    """Cold decide of the tier-2 renaming-ladder closure (no cache)."""

    def decide_cold():
        pipeline = DecisionPipeline(budget=SMOKE_BUDGET)
        return pipeline.decide(4, 5, 0, 1)

    verdict = benchmark(decide_cold)
    assert verdict.solvability is Solvability.UNSOLVABLE
    assert verdict.tier == 2
    assert not verdict.cached


def bench_decide_certificate_cache_warm(benchmark, tmp_path):
    """Warm decide: the verdict comes from the disk-backed cache."""
    cache = CertificateCache(tmp_path / "cache")
    pipeline = DecisionPipeline(budget=SMOKE_BUDGET, cache=cache)
    pipeline.decide(4, 5, 0, 1)  # prime

    verdict = benchmark(pipeline.decide, 4, 5, 0, 1)
    assert verdict.cached
    assert verdict.solvability is Solvability.UNSOLVABLE


def bench_structural_tiers_sweep(benchmark):
    """Tiers 1-2 across a family (what every cell build pays per node)."""

    def sweep():
        return [
            structural_verdict(12, m, low, high)
            for m in range(1, 7)
            for low in range(0, 3)
            for high in range(max(low, 1), 13)
        ]

    results = benchmark(sweep)
    assert all(result.tier in (1, 2) for result in results)


def bench_close_open_sweep(benchmark):
    """The full close-open pass over an in-memory rectangle."""
    graph = build_rectangle(SMOKE_N, SMOKE_M)

    report = benchmark(close_open, graph, SMOKE_BUDGET)
    assert report.open_before >= report.open_after


def bench_certificate_replay(benchmark, tmp_path):
    """Replaying every certificate a built store carries."""
    store = UniverseStore(tmp_path / "store")
    store.build(SMOKE_N, SMOKE_M)
    graph = store.load()
    payloads = list(graph.certificate_payloads.values())
    assert payloads

    def replay():
        return [check_certificate_payload(payload) for payload in payloads]

    problems = benchmark(replay)
    assert not any(problems)


def bench_decide_open_with_evidence(benchmark, tmp_path):
    """Deciding a genuinely open task: refutation evidence, then cached."""
    fresh = itertools.count()

    def decide_open():
        cache = CertificateCache(tmp_path / f"open{next(fresh)}")
        pipeline = DecisionPipeline(budget=SMOKE_BUDGET, cache=cache)
        return pipeline.decide(4, 3, 0, 2)

    verdict = benchmark(decide_open)
    assert verdict.solvability is Solvability.OPEN
    assert any("no comparison-based IIS" in note for note in verdict.evidence)
