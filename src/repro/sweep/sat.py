"""SAT encoding of r-round decision-map existence, with a built-in solver.

The exhaustive tier-4 search (:func:`repro.topology.decision.search_decision_map`)
walks the decision-map space class by class, re-checking facet legality in
Python per assignment — complete, but slow on the larger complexes the
close-open sweep wants to attack.  This module recasts the same question
as propositional satisfiability:

* one boolean per ``(canonical class, output value)`` pair with
  exactly-one constraints per class;
* per facet and value, the task's counting bounds become clauses — the
  at-most-``u`` side forbids every *minimal* subset of the facet's
  classes whose multiplicities sum past ``u``, the at-least-``l`` side
  requires a value in the complement of every *maximal* deficient
  subset (facets have at most ``n`` distinct classes, so both
  enumerations are tiny);
* value interchangeability of symmetric GSB tasks — legality depends
  only on the multiset of per-value counts — is broken with a
  **value-precede chain** over the deterministic class order (value
  ``w`` may first appear only after ``w - 1``), the clause-level
  counterpart of the ``value_precede`` breakers catalogued in
  SNIPPETS.md; it generalizes the first-class-pins-value-1 trick the
  backtracking search uses.

Satisfying assignments decode to decision maps (independently verified
and certified by the caller); refutations are sound "no r-round
comparison-based protocol exists" statements, the same bounded evidence
the exhaustive tier records.

The solver is a dependency-free CDCL — two-watched-literal propagation,
first-UIP conflict learning, activity-driven branching — so the attack
has no hard dependency on an external SAT solver.  A conflict budget
makes every call terminate; exceeding it raises
:class:`SatBudgetExceeded`, which the sweep records as an exhausted
attack rung.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..core.gsb import GSBTask
from ..topology.decision import decision_class_order
from ..topology.is_complex import ISProtocolComplex


class SatBudgetExceeded(RuntimeError):
    """The conflict budget ran out before SAT/UNSAT was established."""


@dataclass(frozen=True)
class DecisionMapEncoding:
    """A CNF whose models are exactly the legal decision maps.

    ``class_order`` is the deterministic order of
    :func:`repro.topology.decision.decision_class_order`; variable
    ``class_index * m + value`` (1-based values) is true iff the class
    decides that value, so models decode positionally.
    """

    n: int
    m: int
    rounds: int
    num_vars: int
    clauses: tuple[tuple[int, ...], ...]
    class_order: tuple

    def decode(self, model: Mapping[int, bool]) -> dict:
        """Model -> decision map (class label -> output value)."""
        decision_map = {}
        for index, label in enumerate(self.class_order):
            values = [
                value
                for value in range(1, self.m + 1)
                if model.get(index * self.m + value)
            ]
            if len(values) != 1:
                raise ValueError(
                    f"model assigns {len(values)} values to class {index}"
                )
            decision_map[label] = values[0]
        return decision_map


def _facet_value_clauses(
    mult: dict[int, int], low: int, high: int, m: int, var
) -> Iterable[tuple[int, ...]]:
    """Counting clauses for one facet (class index -> multiplicity)."""
    distinct = sorted(mult)
    # At most ``high`` per value: forbid minimal over-threshold subsets.
    for size in range(1, len(distinct) + 1):
        for subset in itertools.combinations(distinct, size):
            total = sum(mult[c] for c in subset)
            if total < high + 1:
                continue
            if all(total - mult[c] < high + 1 for c in subset):
                for value in range(1, m + 1):
                    yield tuple(-var(c, value) for c in subset)
    # At least ``low`` per value: some class outside every maximal
    # deficient subset must take the value.
    if low >= 1:
        for size in range(0, len(distinct) + 1):
            for subset in itertools.combinations(distinct, size):
                total = sum(mult[c] for c in subset)
                if total > low - 1:
                    continue
                rest = [c for c in distinct if c not in subset]
                if all(total + mult[c] > low - 1 for c in rest):
                    for value in range(1, m + 1):
                        yield tuple(var(c, value) for c in rest)


def encode_decision_map(
    task: GSBTask, complex_: ISProtocolComplex
) -> DecisionMapEncoding:
    """CNF for "an r-round comparison-based decision map solves ``task``"."""
    if task.n != complex_.n:
        raise ValueError(
            f"task is on {task.n} processes but the complex has {complex_.n}"
        )
    classes = complex_.canonical_classes()
    order = decision_class_order(complex_)
    position = {label: index for index, label in enumerate(order)}
    m = task.m
    low, high = task.low, task.high

    def var(class_index: int, value: int) -> int:
        return class_index * m + value

    clauses: set[tuple[int, ...]] = set()
    for index in range(len(order)):
        clauses.add(tuple(var(index, value) for value in range(1, m + 1)))
        for v1, v2 in itertools.combinations(range(1, m + 1), 2):
            clauses.add((-var(index, v1), -var(index, v2)))
    # Facets repeat class multisets heavily (the complex is built from
    # order-isomorphic views); dedupe before clause generation.
    seen: set[tuple] = set()
    for facet in complex_.facets():
        mult: dict[int, int] = {}
        for vertex in facet:
            index = position[classes[vertex]]
            mult[index] = mult.get(index, 0) + 1
        fingerprint = tuple(sorted(mult.items()))
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        clauses.update(_facet_value_clauses(mult, low, high, m, var))
    if task.is_symmetric:
        # Value-precede chain over the class order: w appears only after
        # w-1 did.  Sound because symmetric-task legality is invariant
        # under value permutation (it only reads per-value counts).
        for w in range(2, m + 1):
            for index in range(len(order)):
                clauses.add(
                    (-var(index, w),)
                    + tuple(var(earlier, w - 1) for earlier in range(index))
                )
    return DecisionMapEncoding(
        n=task.n,
        m=m,
        rounds=complex_.rounds,
        num_vars=len(order) * m,
        clauses=tuple(sorted(clauses, key=lambda c: (len(c), c))),
        class_order=tuple(order),
    )


@dataclass
class SatResult:
    """Outcome of one :func:`solve_cnf` call."""

    satisfiable: bool
    model: dict[int, bool] | None
    conflicts: int
    decisions: int


def solve_cnf(
    num_vars: int,
    clauses: Sequence[Sequence[int]],
    max_conflicts: int | None = None,
) -> SatResult:
    """Decide a CNF with a self-contained CDCL solver.

    Raises :class:`SatBudgetExceeded` when ``max_conflicts`` runs out —
    the caller records the rung as exhausted rather than concluding
    anything.  Polarity defaults to False (use few values first), which
    together with the value-precede chain steers models toward the
    lexicographically least decision map; after the first restart,
    phase saving takes over.  Restarts follow a Luby sequence; learned
    clauses are never deleted, so the solver stays complete.
    """
    assign: dict[int, bool] = {}
    level: dict[int, int] = {}
    reason: dict[int, list[int] | None] = {}
    trail: list[int] = []
    database: list[list[int]] = []
    watches: dict[int, list[int]] = {}
    activity = [0.0] * (num_vars + 1)
    phase = [False] * (num_vars + 1)
    conflicts = 0
    decisions = 0

    def value(lit: int) -> bool | None:
        truth = assign.get(abs(lit))
        if truth is None:
            return None
        return truth == (lit > 0)

    def enqueue(lit: int, at: int, because: list[int] | None) -> None:
        variable = abs(lit)
        assign[variable] = lit > 0
        level[variable] = at
        reason[variable] = because
        trail.append(variable)
        queue.append(variable)

    def watch(cid: int) -> None:
        for lit in database[cid][:2]:
            watches.setdefault(lit, []).append(cid)

    queue: list[int] = []
    for raw in clauses:
        clause = list(raw)
        if not clause:
            return SatResult(False, None, conflicts, decisions)
        if len(clause) == 1:
            lit = clause[0]
            current = value(lit)
            if current is False:
                return SatResult(False, None, conflicts, decisions)
            if current is None:
                enqueue(lit, 0, None)
            continue
        database.append(clause)
        watch(len(database) - 1)

    def propagate(at: int) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or None."""
        while queue:
            variable = queue.pop()
            false_lit = -variable if assign[variable] else variable
            watching = watches.get(false_lit, [])
            index = 0
            while index < len(watching):
                cid = watching[index]
                clause = database[cid]
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = value(clause[0])
                if first is True:
                    index += 1
                    continue
                moved = False
                for slot in range(2, len(clause)):
                    if value(clause[slot]) is not False:
                        clause[1], clause[slot] = clause[slot], clause[1]
                        watches.setdefault(clause[1], []).append(cid)
                        watching[index] = watching[-1]
                        watching.pop()
                        moved = True
                        break
                if moved:
                    continue
                if first is False:
                    return clause
                enqueue(clause[0], at, clause)
                index += 1
        return None

    conflict = propagate(0)
    if conflict is not None:
        return SatResult(False, None, conflicts, decisions)

    def luby(index: int) -> int:
        """The Luby restart sequence 1,1,2,1,1,2,4,... (0-indexed)."""
        size, depth = 1, 0
        while size < index + 1:
            depth += 1
            size = 2 * size + 1
        while size - 1 != index:
            size = (size - 1) // 2
            depth -= 1
            index %= size
        return 1 << depth

    restart_count = 0
    restart_limit = 256 * luby(0)
    since_restart = 0
    current_level = 0
    while True:
        if since_restart >= restart_limit and current_level > 0:
            # Restart: keep the learned clauses, drop the decisions.
            while trail and level[trail[-1]] > 0:
                variable = trail.pop()
                phase[variable] = assign[variable]
                del assign[variable], level[variable], reason[variable]
            current_level = 0
            queue.clear()
            restart_count += 1
            restart_limit = 256 * luby(restart_count)
            since_restart = 0
        # Branch: highest-activity unassigned variable, saved polarity.
        branch = 0
        best = -1.0
        for variable in range(1, num_vars + 1):
            if variable not in assign and activity[variable] > best:
                branch, best = variable, activity[variable]
        if branch == 0:
            return SatResult(True, dict(assign), conflicts, decisions)
        decisions += 1
        current_level += 1
        enqueue(branch if phase[branch] else -branch, current_level, None)
        while True:
            conflict = propagate(current_level)
            if conflict is None:
                break
            conflicts += 1
            since_restart += 1
            if max_conflicts is not None and conflicts > max_conflicts:
                raise SatBudgetExceeded(
                    f"SAT search exceeded {max_conflicts} conflicts"
                )
            if current_level == 0:
                return SatResult(False, None, conflicts, decisions)
            # First-UIP conflict analysis.
            learnt: list[int] = []
            seen: set[int] = set()
            pending = 0
            pivot: int | None = None
            clause = conflict
            cursor = len(trail) - 1
            while True:
                for lit in clause:
                    variable = abs(lit)
                    if variable == pivot or variable in seen:
                        continue
                    if level[variable] == 0:
                        continue
                    seen.add(variable)
                    activity[variable] += 1.0
                    if level[variable] == current_level:
                        pending += 1
                    else:
                        learnt.append(
                            -variable if assign[variable] else variable
                        )
                while (
                    trail[cursor] not in seen
                    or level[trail[cursor]] != current_level
                ):
                    cursor -= 1
                pivot = trail[cursor]
                pending -= 1
                seen.discard(pivot)
                if pending == 0:
                    break
                clause = reason[pivot] or []
                cursor -= 1
            uip = -pivot if assign[pivot] else pivot
            learnt.insert(0, uip)
            backtrack_level = (
                max(level[abs(lit)] for lit in learnt[1:])
                if len(learnt) > 1
                else 0
            )
            while trail and level[trail[-1]] > backtrack_level:
                variable = trail.pop()
                phase[variable] = assign[variable]
                del assign[variable], level[variable], reason[variable]
            current_level = backtrack_level
            queue.clear()
            if len(learnt) == 1:
                enqueue(uip, 0, None)
            else:
                database.append(learnt)
                watch(len(database) - 1)
                enqueue(uip, current_level, learnt)
            if conflicts % 256 == 0:
                for variable in range(1, num_vars + 1):
                    activity[variable] *= 0.5


def solve_decision_map_sat(
    task: GSBTask,
    complex_: ISProtocolComplex,
    max_conflicts: int | None = None,
) -> tuple[dict | None, SatResult]:
    """Encode + solve; returns ``(decision_map | None, raw SAT result)``."""
    encoding = encode_decision_map(task, complex_)
    result = solve_cnf(
        encoding.num_vars, encoding.clauses, max_conflicts=max_conflicts
    )
    if not result.satisfiable:
        return None, result
    return encoding.decode(result.model), result
