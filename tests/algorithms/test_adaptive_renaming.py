"""Tests for snapshot-based adaptive (2p-1)-renaming."""

from repro.core import renaming
from repro.shm import (
    CheckReport,
    RandomScheduler,
    check_algorithm,
    check_algorithm_exhaustive,
    check_comparison_based,
    check_index_independence,
    run_algorithm,
)
from repro.shm.explore import explore_all_participant_subsets
from repro.shm.runtime import Runtime, default_identities
from repro.shm.schedulers import RoundRobinScheduler
from repro.algorithms import adaptive_renaming_algorithm


def factory():
    return {"RENAME": None}, {}


class TestCorrectness:
    def test_battery(self):
        for n in (2, 3, 4, 6):
            report = check_algorithm(
                renaming(n, 2 * n - 1),
                adaptive_renaming_algorithm(),
                n,
                system_factory=factory,
                runs=50,
                seed=n,
            )
            assert report.ok, report.violations[:3]

    def test_exhaustive_n2(self):
        report = check_algorithm_exhaustive(
            renaming(2, 3), adaptive_renaming_algorithm(), 2,
            system_factory=factory,
        )
        assert report.ok
        assert report.runs > 10

    def test_adaptivity_2p_minus_1(self):
        # With p participants, names stay within [1..2p-1]: random
        # schedules over every participant subset of a 4-process system.
        import itertools
        import random

        from repro.shm import ListScheduler

        for size in (1, 2, 3, 4):
            for participants in itertools.combinations(range(4), size):
                for seed in range(6):
                    rng = random.Random(seed)
                    schedule = [
                        rng.choice(participants) for _ in range(60 * size)
                    ]
                    result = run_algorithm(
                        adaptive_renaming_algorithm(),
                        default_identities(4, random.Random(seed + 17)),
                        ListScheduler(schedule),
                        arrays={"RENAME": None},
                    )
                    names = [result.outputs[pid] for pid in participants]
                    assert all(name is not None for name in names)
                    assert all(1 <= name <= 2 * size - 1 for name in names), (
                        participants, names,
                    )
                    assert len(set(names)) == size

    def test_solo_process_gets_name_1(self):
        result = run_algorithm(
            adaptive_renaming_algorithm(), [9], RandomScheduler(0),
            arrays={"RENAME": None},
        )
        assert result.outputs == [1]


class TestDiscipline:
    def test_comparison_based(self):
        report = check_comparison_based(
            adaptive_renaming_algorithm(), 3, system_factory=factory, runs=15
        )
        assert report.ok, report.violations[:3]

    def test_index_independent(self):
        report = check_index_independence(
            adaptive_renaming_algorithm(), 3, system_factory=factory, runs=15
        )
        assert report.ok, report.violations[:3]


class TestSubProtocolUse:
    def test_composes_in_larger_protocol(self):
        from repro.algorithms import adaptive_renaming
        from repro.shm.ops import Write

        def double_renaming(ctx):
            first = yield from adaptive_renaming(ctx, "RENAME")
            yield Write("LOG", first)
            second = yield from adaptive_renaming(ctx, "RENAME2")
            return (first, second)

        report = CheckReport()
        for seed in range(10):
            result = run_algorithm(
                double_renaming,
                default_identities(3),
                RandomScheduler(seed),
                arrays={"RENAME": None, "RENAME2": None, "LOG": None},
            )
            report.runs += 1
            firsts = [out[0] for out in result.outputs]
            seconds = [out[1] for out in result.outputs]
            assert len(set(firsts)) == 3 and len(set(seconds)) == 3
        assert report.runs == 10
