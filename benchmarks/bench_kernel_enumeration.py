"""Experiment E-KERNEL: structure-machinery scaling.

Workload: kernel-set enumeration, synonym-class partitioning and
canonicalization across growing (n, m) grids — the raw combinatorics every
other artifact builds on — plus the prefix-sharing exploration engine's
batched battery (the machinery Theorems 9-11's model checks run on).
Assertions cross-check counts against independent identities (partition
counts, Fubini-style recursions, legacy-explorer multisets).
"""

from repro.core import (
    SymmetricGSBTask,
    canonical_parameters,
    count_kernel_vectors,
    feasible_bound_pairs,
    get_store,
    kernel_vectors,
    synonym_classes,
)
from repro.shm import explore_many, explore_one


def bench_kernel_enumeration_grid(benchmark):
    def enumerate_grid():
        total = 0
        for n in range(2, 15):
            for m in range(1, min(n, 6) + 1):
                total += len(kernel_vectors(n, m, 0, n))
        return total

    total = benchmark(enumerate_grid)
    assert total > 300


def bench_kernel_enumeration_large_single(benchmark):
    kernels = benchmark(kernel_vectors, 40, 6, 1, 20)
    assert kernels
    assert all(sum(kernel) == 40 for kernel in kernels)
    assert len(kernels) == count_kernel_vectors(40, 6, 1, 20)


def bench_kernel_lattice_family_sweep(benchmark):
    """All kernel sets of one family: the master list is enumerated once,
    every (l, u) set derived as a filter over it."""

    def sweep():
        return {
            (low, high): kernel_vectors(30, 5, low, high)
            for low, high in feasible_bound_pairs(30, 5)
        }

    sets = benchmark(sweep)
    master = set(kernel_vectors(30, 5, 0, 30))
    assert all(set(kernels) <= master for kernels in sets.values())
    assert all(
        len(kernels) == count_kernel_vectors(30, 5, low, high)
        for (low, high), kernels in sets.items()
    )


def bench_family_store_entries(benchmark):
    """Whole-family annotation through the memoized store (warm after
    round one — the steady state every analysis artifact rides on)."""
    store = get_store()

    def entries():
        return [store.entries(n, 4) for n in range(4, 15)]

    families = benchmark(entries)
    assert all(families)


def bench_synonym_partition(benchmark):
    def partition():
        return {
            (n, m): synonym_classes(n, m)
            for n in range(4, 10)
            for m in (2, 3)
        }

    classes = benchmark(partition)
    assert classes[(6, 3)] and len(classes[(6, 3)]) == 7


def bench_canonicalization_sweep(benchmark):
    def sweep():
        count = 0
        for n in range(2, 12):
            for m in range(1, min(n, 5) + 1):
                for low, high in feasible_bound_pairs(n, m):
                    canonical_parameters(n, m, low, high)
                    count += 1
        return count

    count = benchmark(sweep)
    assert count > 400


def bench_engine_exploration_battery(benchmark):
    """Batched exhaustive exploration of the built-in specs at n <= 3.

    The wsb-grh cell alone enumerates 39,330 interleavings — ~11 s on the
    legacy re-execution explorer, ~0.1 s on the generator-core engine,
    ~0.02 s on the compiled protocol core this battery now rides by
    default (see docs/architecture.md).
    """

    def battery():
        return explore_many(["wsb", "renaming", "wsb-grh"], [2, 3])

    results = benchmark(battery)
    assert all(result.violations == 0 for result in results)
    assert all(result.core == "compiled" for result in results)
    assert sum(result.runs for result in results) > 40_000


def bench_engine_exploration_n4_frontier(benchmark):
    """The n = 4 frontier the legacy explorer cannot reach in benchmark time.

    Figure 2's renaming protocol at n = 4 has 369,600 interleavings; the
    legacy path needs ~130 s, the memoized engine materializes only 240
    leaves (~0.5 s on the generator core, ~0.1 s on the compiled core).
    One round keeps the suite fast while pinning the claim.
    """
    result = benchmark.pedantic(
        explore_one, args=("renaming", 4), rounds=1, iterations=1
    )
    assert result.runs == 369_600
    assert result.violations == 0
    assert result.stats.memo_hits > 0


def bench_containment_checks(benchmark):
    tasks = [
        SymmetricGSBTask(10, 4, low, high)
        for low, high in feasible_bound_pairs(10, 4)
    ]

    def all_pairs():
        included = 0
        for first in tasks:
            for second in tasks:
                if first.includes(second):
                    included += 1
        return included

    included = benchmark(all_pairs)
    assert included >= len(tasks)  # at least the reflexive pairs
