"""Tests for the WSB constructions (Sections 5.3, 6 and Corollary 4)."""

from repro.core import counting_vector, k_weak_symmetry_breaking, renaming, weak_symmetry_breaking
from repro.shm import (
    ExplicitStrategy,
    GSBOracle,
    RandomScheduler,
    check_algorithm,
    check_algorithm_exhaustive,
    run_algorithm,
)
from repro.shm.runtime import default_identities
from repro.algorithms import (
    kwsb_from_renaming,
    renaming_2n2_from_wsb,
    renaming_oracle_system_factory,
    wsb_from_renaming,
    wsb_oracle_system_factory,
)


class TestWSBFromRenaming:
    def test_battery(self):
        for n in (3, 4, 5, 6):
            report = check_algorithm(
                weak_symmetry_breaking(n),
                wsb_from_renaming(),
                n,
                system_factory=renaming_oracle_system_factory(n, 2 * n - 2, n),
                runs=50,
                seed=n,
            )
            assert report.ok, (n, report.violations[:3])

    def test_exhaustive_n3(self):
        report = check_algorithm_exhaustive(
            weak_symmetry_breaking(3),
            wsb_from_renaming(),
            3,
            system_factory=renaming_oracle_system_factory(3, 4, 1),
        )
        assert report.ok

    def test_parity_argument_tight(self):
        # Adversarial oracle: all names of one parity as far as possible.
        n = 4
        strategy = ExplicitStrategy([1, 3, 5, 2])  # three odds is the max
        factory = lambda: (
            {},
            {"RENAMING": GSBOracle(renaming(n, 2 * n - 2), strategy=strategy)},
        )
        arrays, objects = factory()
        result = run_algorithm(
            wsb_from_renaming(),
            default_identities(n),
            RandomScheduler(3),
            arrays=arrays,
            objects=objects,
        )
        assert weak_symmetry_breaking(n).is_legal_output(result.outputs)


class TestRenamingFromWSB:
    def test_battery(self):
        for n in (2, 3, 4, 6):
            report = check_algorithm(
                renaming(n, 2 * n - 2),
                renaming_2n2_from_wsb(),
                n,
                system_factory=wsb_oracle_system_factory(n, n),
                runs=50,
                seed=n * 7,
            )
            assert report.ok, (n, report.violations[:3])

    def test_exhaustive_n2(self):
        report = check_algorithm_exhaustive(
            renaming(2, 2),
            renaming_2n2_from_wsb(),
            2,
            system_factory=wsb_oracle_system_factory(2, 5),
        )
        assert report.ok

    def test_sides_use_disjoint_namespaces(self):
        # Side 1 names stay strictly below side 2 names.
        n = 5
        for seed in range(15):
            factory = wsb_oracle_system_factory(n, seed)
            arrays, objects = factory()
            result = run_algorithm(
                renaming_2n2_from_wsb(),
                default_identities(n),
                RandomScheduler(seed),
                arrays=arrays,
                objects=objects,
            )
            sides = objects["WSB"].assigned
            names = result.outputs
            low_side = [names[pid] for pid, side in sides.items() if side == 1]
            high_side = [names[pid] for pid, side in sides.items() if side == 2]
            assert low_side and high_side  # WSB guarantees both non-empty
            assert max(low_side) < min(high_side)
            assert all(1 <= name <= 2 * n - 2 for name in names)


class TestKWSBFromRenaming:
    def test_battery(self):
        for n, k in [(4, 2), (5, 2), (6, 2), (6, 3)]:
            report = check_algorithm(
                k_weak_symmetry_breaking(n, k),
                kwsb_from_renaming(n, k),
                n,
                system_factory=renaming_oracle_system_factory(
                    n, 2 * (n - k), seed=k
                ),
                runs=40,
                seed=n + k,
            )
            assert report.ok, (n, k, report.violations[:3])

    def test_exact_counts_within_bounds(self):
        n, k = 6, 2
        for seed in range(10):
            factory = renaming_oracle_system_factory(n, 2 * (n - k), seed)
            arrays, objects = factory()
            result = run_algorithm(
                kwsb_from_renaming(n, k),
                default_identities(n),
                RandomScheduler(seed),
                arrays=arrays,
                objects=objects,
            )
            counts = counting_vector(result.outputs, 2)
            assert all(k <= count <= n - k for count in counts)
