"""Theorem 10's binomial condition, tabulated (experiment E-GCD).

Theorem 10 hinges on whether ``{C(n,i) : 1 <= i <= floor(n/2)}`` is
setwise coprime.  By Ram's classical theorem the gcd is p when n is a
prime power p^k and 1 otherwise, so the WSB-family tasks flip solvability
along the prime-power structure of n.  This module tabulates the
condition and the downstream verdicts for ranges of n.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.solvability import (
    binomial_gcd,
    binomials_coprime,
    is_prime_power,
    wsb_wait_free_solvable,
)
from .reporting import render_table


@dataclass(frozen=True)
class BinomialRow:
    """Theorem 10's data for one n."""

    n: int
    gcd: int
    coprime: bool
    prime_power: bool
    wsb_solvable: bool
    renaming_2n2_solvable: bool


def binomial_table(max_n: int = 32, min_n: int = 2) -> list[BinomialRow]:
    """Rows for n in [min_n..max_n]."""
    rows = []
    for n in range(min_n, max_n + 1):
        rows.append(
            BinomialRow(
                n=n,
                gcd=binomial_gcd(n),
                coprime=binomials_coprime(n),
                prime_power=is_prime_power(n),
                wsb_solvable=wsb_wait_free_solvable(n),
                renaming_2n2_solvable=wsb_wait_free_solvable(n),
            )
        )
    return rows


def check_ram_theorem(max_n: int = 256) -> list[int]:
    """Cross-check gcd{C(n,i)} == 1 iff n is not a prime power.

    Returns the n values violating the equivalence (expected: none).
    """
    return [
        n
        for n in range(2, max_n + 1)
        if binomials_coprime(n) == is_prime_power(n)
    ]


def render_binomial_table(max_n: int = 32) -> str:
    """ASCII table of the condition and WSB/(2n-2)-renaming verdicts."""
    rows = binomial_table(max_n)
    return "Theorem 10 condition: gcd{C(n,i) : 1 <= i <= n/2}\n" + render_table(
        ["n", "gcd", "coprime", "prime power", "WSB solvable",
         "(2n-2)-renaming solvable"],
        [
            [row.n, row.gcd, row.coprime, row.prime_power, row.wsb_solvable,
             row.renaming_2n2_solvable]
            for row in rows
        ],
        aligns=["r", "r", "l", "l", "l", "l"],
    )


def solvable_wsb_values(max_n: int = 64) -> list[int]:
    """The n values (>= 2) for which WSB is wait-free solvable."""
    return [n for n in range(2, max_n + 1) if wsb_wait_free_solvable(n)]
