"""Weak symmetry breaking constructions (Sections 5.3 and 6).

Three reductions around the WSB / (2n-2)-renaming / 2-slot equivalence the
paper leans on:

* **WSB from (2n-2)-renaming** — decide the parity of the new name.  The
  name space ``[1..2n-2]`` holds only n-1 odd and n-1 even names, so n
  distinct names can never share a parity.
* **(2n-2)-renaming from WSB** — the GRH [29] direction: split processes
  into the two WSB sides, then run one *adaptive* snapshot renaming
  instance per side, one claiming names bottom-up and the other top-down.
  Side sizes p0 + p1 = n with p0, p1 <= n-1 give bottom names
  ``<= 2*p0 - 1 < 2*p0 = 2n - 2*p1 <=`` top names: no collision, all
  within ``[1..2n-2]``.
* **k-WSB from 2(n-k)-renaming** (Corollary 4) — with distinct names in
  ``[1..2(n-k)]``, decide 1 on the low half, 2 on the high half; each half
  has n-k names, so each value is decided at most n-k (hence at least k)
  times.
"""

from __future__ import annotations

from typing import Callable

from ..core.gsb import SymmetricGSBTask
from ..core.named import k_weak_symmetry_breaking, renaming, weak_symmetry_breaking
from ..shm.oracles import AssignmentStrategy, GSBOracle
from ..shm.ops import Invoke
from ..shm.runtime import Algorithm, ProcessContext
from .adaptive_renaming import adaptive_renaming

#: Shared object / array names.
RENAMING_OBJECT = "RENAMING"
WSB_OBJECT = "WSB"
UP_ARRAY = "UP"
DOWN_ARRAY = "DOWN"


def wsb_from_renaming(renaming_object: str = RENAMING_OBJECT) -> Algorithm:
    """WSB in ``ASM[(2n-2)-renaming]``: decide the name's parity."""

    def algorithm(ctx: ProcessContext):
        name = yield Invoke(renaming_object, GSBOracle.ACQUIRE)
        return (name % 2) + 1

    return algorithm


def kwsb_from_renaming(
    n: int, k: int, renaming_object: str = RENAMING_OBJECT
) -> Algorithm:
    """Corollary 4: k-WSB in ``ASM[2(n-k)-renaming]`` with no communication."""
    half = n - k

    def algorithm(ctx: ProcessContext):
        name = yield Invoke(renaming_object, GSBOracle.ACQUIRE)
        return 1 if name <= half else 2

    return algorithm


def renaming_2n2_from_wsb(
    wsb_object: str = WSB_OBJECT,
    up_array: str = UP_ARRAY,
    down_array: str = DOWN_ARRAY,
) -> Algorithm:
    """(2n-2)-renaming in ``ASM[WSB]`` via two-sided adaptive renaming."""

    def algorithm(ctx: ProcessContext):
        side = yield Invoke(wsb_object, GSBOracle.ACQUIRE)
        if side == 1:
            name = yield from adaptive_renaming(ctx, up_array)
            return name
        name = yield from adaptive_renaming(ctx, down_array)
        return 2 * ctx.n - 1 - name

    return algorithm


def wsb_task(n: int) -> SymmetricGSBTask:
    return weak_symmetry_breaking(n)


def kwsb_task(n: int, k: int) -> SymmetricGSBTask:
    return k_weak_symmetry_breaking(n, k)


def renaming_2n2_task(n: int) -> SymmetricGSBTask:
    return renaming(n, 2 * n - 2)


def renaming_oracle_system_factory(
    n: int,
    m: int,
    seed: int = 0,
    strategy: AssignmentStrategy | None = None,
    renaming_object: str = RENAMING_OBJECT,
) -> Callable[[], tuple[dict, dict]]:
    """System factory with a fresh m-renaming oracle per run."""
    counter = [0]

    def factory() -> tuple[dict, dict]:
        counter[0] += 1
        oracle = GSBOracle(renaming(n, m), strategy=strategy, seed=seed + counter[0])
        return {}, {renaming_object: oracle}

    return factory


def wsb_oracle_system_factory(
    n: int,
    seed: int = 0,
    strategy: AssignmentStrategy | None = None,
    wsb_object: str = WSB_OBJECT,
    up_array: str = UP_ARRAY,
    down_array: str = DOWN_ARRAY,
) -> Callable[[], tuple[dict, dict]]:
    """System factory: WSB oracle plus the two per-side renaming arrays."""
    counter = [0]

    def factory() -> tuple[dict, dict]:
        counter[0] += 1
        oracle = GSBOracle(
            weak_symmetry_breaking(n), strategy=strategy, seed=seed + counter[0]
        )
        return {up_array: None, down_array: None}, {wsb_object: oracle}

    return factory
