"""Tests for the memoized family store (repro.core.store)."""

import pytest

from repro.core import (
    FamilyStore,
    SymmetricGSBTask,
    anchoring_profile,
    canonical_parameters,
    classify,
    feasible_bound_pairs,
    get_store,
    is_canonical,
    kernel_vectors,
)
from repro.core.family import (
    all_kernel_columns,
    canonical_entries,
    family_entries,
    family_statistics,
)
from repro.core.store import build_family_record


def _reference_entries(n, m):
    """Entries built the pre-store way, directly from the primitives."""
    rows = []
    for low, high in feasible_bound_pairs(n, m):
        task = SymmetricGSBTask(n, m, low, high)
        solvability, reason = classify(task)
        rows.append(
            (
                task.parameters,
                task.kernel_set,
                is_canonical(task),
                canonical_parameters(n, m, low, high),
                anchoring_profile(task),
                solvability,
                reason,
            )
        )
    rows.sort(key=lambda row: (-row[0][3], row[0][2]))
    return rows


class TestFamilyRecord:
    def test_entries_match_reference(self):
        for n, m in [(6, 3), (5, 2), (8, 4), (2, 1)]:
            record = build_family_record(n, m)
            reference = _reference_entries(n, m)
            assert len(record.entries) == len(reference)
            for entry, expected in zip(record.entries, reference):
                assert entry.parameters == expected[0]
                assert entry.kernel_set == expected[1]
                assert entry.canonical == expected[2]
                assert entry.canonical_parameters == expected[3]
                assert entry.anchoring == expected[4]
                assert entry.solvability == expected[5]
                assert entry.solvability_reason == expected[6]

    def test_index_covers_every_feasible_pair(self):
        record = build_family_record(7, 3)
        assert set(record.index) == set(feasible_bound_pairs(7, 3))

    def test_kernel_columns_are_the_loosest_set(self):
        record = build_family_record(6, 3)
        assert record.kernel_columns == kernel_vectors(6, 3, 0, 6)

    def test_canonical_entries_subset(self):
        record = build_family_record(6, 3)
        assert len(record.canonical_entries) == 7  # Figure 1's nodes
        assert all(entry.canonical for entry in record.canonical_entries)


class TestFamilyStore:
    def test_family_cached_and_identical(self):
        store = FamilyStore()
        first = store.family(6, 3)
        second = store.family(6, 3)
        assert first is second  # O(1) on the second access
        info = store.cache_info()
        assert info["misses"] == 1 and info["hits"] == 1

    def test_entry_lookup_and_keyerror_contract(self):
        store = FamilyStore()
        entry = store.entry(6, 3, 1, 4)
        assert entry.canonical and entry.anchoring == "l-anchored"
        with pytest.raises(KeyError, match=r"<6,3,3,3> is not a feasible"):
            store.entry(6, 3, 3, 3)

    def test_statistics_returns_fresh_dict(self):
        store = FamilyStore()
        stats = store.statistics(6, 3)
        stats["feasible_parameterizations"] = -1
        assert store.statistics(6, 3)["feasible_parameterizations"] == 15

    def test_prime_and_clear(self):
        store = FamilyStore()
        store.prime([(4, 2), (5, 2)])
        assert store.cache_info()["families"] == 2
        store.clear()
        assert store.cache_info() == {"hits": 0, "misses": 0, "families": 0}

    def test_global_store_shared(self):
        assert get_store() is get_store()


class TestFamilyModuleDelegation:
    """The legacy family.py API must keep its exact shape on the store."""

    def test_family_entries_returns_fresh_list(self):
        first = family_entries(6, 3)
        second = family_entries(6, 3)
        assert first == second
        assert first is not second
        first.clear()
        assert len(family_entries(6, 3)) == 15

    def test_statistics_contents(self):
        stats = family_statistics(6, 3)
        assert stats["feasible_parameterizations"] == 15
        assert stats["synonym_classes"] == 7
        assert stats["kernel_columns"] == 7
        # Insertion order is part of the report contract.
        assert list(stats)[:3] == [
            "feasible_parameterizations",
            "synonym_classes",
            "kernel_columns",
        ]

    def test_all_kernel_columns(self):
        assert all_kernel_columns(6, 3) == kernel_vectors(6, 3, 0, 6)

    def test_canonical_entries(self):
        entries = canonical_entries(6, 3)
        assert [entry.parameters[2:] for entry in entries] == sorted(
            [entry.parameters[2:] for entry in entries],
            key=lambda pair: (-pair[1], pair[0]),
        )
        assert len(entries) == 7
