"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "<6,3,0,6>" in out
        assert "matches the published Table 1: True" in out

    def test_table1_other_family(self, capsys):
        assert main(["table1", "--n", "5", "--m", "2"]) == 0
        assert "<5,2," in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "->" in capsys.readouterr().out

    def test_figure1_dot(self, capsys):
        assert main(["figure1", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_atlas(self, capsys):
        assert main(["atlas", "--n", "5", "--m", "2"]) == 0
        assert "statistics:" in capsys.readouterr().out

    def test_named(self, capsys):
        assert main(["named", "--n", "6"]) == 0
        assert "election" in capsys.readouterr().out

    def test_binomials(self, capsys):
        assert main(["binomials", "--max-n", "12"]) == 0
        assert "gcd" in capsys.readouterr().out

    def test_classify(self, capsys):
        assert main(["classify", "6", "3", "1", "6"]) == 0
        out = capsys.readouterr().out
        assert "GSB<6,3,1,4>" in out  # canonical representative
        assert "classification:" in out

    def test_classify_infeasible(self, capsys):
        assert main(["classify", "6", "3", "3", "3"]) == 0
        assert "infeasible" in capsys.readouterr().out

    def test_census(self, capsys):
        assert main(["census", "--max-n", "10", "--max-m", "3"]) == 0
        out = capsys.readouterr().out
        assert "GSB universe census" in out
        assert "solvability:" in out

    def test_census_per_cell_and_json(self, capsys, tmp_path):
        path = tmp_path / "census.json"
        assert (
            main(
                [
                    "census", "--max-n", "8", "--max-m", "3",
                    "--per-cell", "--json", str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"wrote {path}" in out
        assert path.exists()

    def test_census_parallel(self, capsys):
        assert main(["census", "--max-n", "8", "--max-m", "3", "--jobs", "2"]) == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_census_rejects_bad_range(self, capsys):
        assert main(["census", "--min-n", "9", "--max-n", "4"]) == 2
        assert "error" in capsys.readouterr().err

    def test_figure1_legacy_method_matches(self, capsys):
        assert main(["figure1", "--dot"]) == 0
        universe_dot = capsys.readouterr().out
        assert main(["figure1", "--dot", "--method", "legacy"]) == 0
        assert capsys.readouterr().out == universe_dot

    def test_verify(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "Table 1 regeneration: OK" in out
        assert "Figure 1 regeneration: OK" in out
        assert "all artifacts verified" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestUniformJsonFlag:
    """Every report subcommand shares the same --json [PATH] contract."""

    def test_table1_json_stdout(self, capsys):
        assert main(["table1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n"] == 6 and payload["m"] == 3
        assert len(payload["rows"]) == 15
        # JSON mode still runs the acceptance check and reports it.
        assert payload["matches_paper"] is True
        assert "problems" not in payload

    def test_table1_json_file(self, capsys, tmp_path):
        path = tmp_path / "table1.json"
        assert main(["table1", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"wrote {path}" in out
        assert "matches the published Table 1: True" in out
        assert json.loads(path.read_text())["m"] == 3

    def test_atlas_json_stdout(self, capsys):
        assert main(["atlas", "--n", "5", "--m", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["statistics"]["synonym_classes"] == 3
        assert all("solvability" in entry for entry in payload["entries"])

    def test_named_json_stdout(self, capsys):
        assert main(["named", "--n", "6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {task["name"] for task in payload["tasks"]}
        assert "election" in names and "WSB" in names

    def test_classify_json_stdout(self, capsys):
        assert main(["classify", "6", "3", "1", "6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["canonical_representative"] == [6, 3, 1, 4]
        assert payload["solvability"] == "open"

    def test_classify_json_infeasible(self, capsys):
        assert main(["classify", "6", "3", "3", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"] is False
        assert "kernel_set" not in payload

    def test_census_json_stdout(self, capsys):
        assert main(["census", "--max-n", "8", "--max-m", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["grid"]["max_n"] == 8


class TestUniverseCommands:
    @pytest.fixture()
    def store_dir(self, tmp_path, capsys):
        path = tmp_path / "universe"
        assert main(["universe", "build", "--max-n", "6", "--max-m", "4",
                     "--dir", str(path)]) == 0
        capsys.readouterr()  # drain the build chatter
        return str(path)

    def test_build_cold_then_warm(self, capsys, tmp_path):
        path = str(tmp_path / "u")
        assert main(["universe", "build", "--max-n", "5", "--max-m", "3",
                     "--dir", path]) == 0
        assert "15 built, 0 reused" in capsys.readouterr().out
        assert main(["universe", "build", "--max-n", "5", "--max-m", "3",
                     "--dir", path]) == 0
        assert "0 built, 15 reused" in capsys.readouterr().out

    def test_build_parallel(self, capsys, tmp_path):
        path = str(tmp_path / "u")
        assert main(["universe", "build", "--max-n", "5", "--max-m", "3",
                     "--jobs", "2", "--dir", path]) == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_build_rejects_bad_rectangle(self, capsys):
        assert main(["universe", "build", "--max-n", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_stats(self, capsys, store_dir):
        assert main(["universe", "stats", "--dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "GSB universe graph" in out
        assert "edges[containment]" in out

    def test_stats_json(self, capsys, store_dir):
        assert main(["universe", "stats", "--dir", store_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["cells"] == 24
        assert payload["store"]["cells"] == 24

    def test_query_harder_than(self, capsys, store_dir):
        assert main(["universe", "query", "--dir", store_dir,
                     "--harder-than", "6", "3", "0", "6"]) == 0
        out = capsys.readouterr().out
        assert "<6,3,2,2>" in out

    def test_query_path_json(self, capsys, store_dir):
        assert main(["universe", "query", "--dir", store_dir, "--json",
                     "--path", "4", "2", "0", "4", "4", "4", "1", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["path"][-1]["kind"] == "theorem8"

    def test_query_frontier(self, capsys, store_dir):
        assert main(["universe", "query", "--dir", store_dir,
                     "--frontier"]) == 0
        assert "boundary edges" in capsys.readouterr().out

    def test_query_incomparable(self, capsys, store_dir):
        assert main(["universe", "query", "--dir", store_dir,
                     "--incomparable", "6", "3"]) == 0
        assert "1 incomparable pairs" in capsys.readouterr().out

    def test_query_infeasible_task_rejected(self, capsys, store_dir):
        assert main(["universe", "query", "--dir", store_dir,
                     "--harder-than", "6", "3", "3", "3"]) == 2
        assert "infeasible" in capsys.readouterr().err

    def test_query_missing_store_rejected(self, capsys, tmp_path):
        assert main(["universe", "query", "--dir", str(tmp_path / "nope"),
                     "--frontier"]) == 2
        assert "no built cells" in capsys.readouterr().err

    def test_export_dot_stdout(self, capsys, store_dir):
        assert main(["universe", "export", "--dir", store_dir]) == 0
        assert capsys.readouterr().out.startswith('digraph "GSB universe"')

    def test_export_graphml_file(self, capsys, store_dir, tmp_path):
        out_path = tmp_path / "u.graphml"
        assert main(["universe", "export", "--dir", store_dir,
                     "--format", "graphml", "--out", str(out_path)]) == 0
        assert f"wrote {out_path}" in capsys.readouterr().out
        assert out_path.read_text().lstrip().startswith("<?xml")


class TestDecideCommand:
    def test_decide_closed_form(self, capsys, tmp_path):
        assert main(["decide", "6", "3", "0", "6",
                     "--dir", str(tmp_path / "u")]) == 0
        out = capsys.readouterr().out
        assert "verdict: trivial" in out
        assert "tier 1" in out
        assert "certificate: c" in out

    def test_decide_padding_with_check(self, capsys, tmp_path):
        assert main(["decide", "4", "5", "0", "1", "--check",
                     "--dir", str(tmp_path / "u")]) == 0
        out = capsys.readouterr().out
        assert "not wait-free solvable" in out
        assert "value-padding" in out
        assert "certificate replays cleanly" in out

    def test_decide_warm_cache(self, capsys, tmp_path):
        store_dir = str(tmp_path / "u")
        assert main(["decide", "4", "5", "0", "1", "--dir", store_dir]) == 0
        capsys.readouterr()
        assert main(["decide", "4", "5", "0", "1", "--dir", store_dir]) == 0
        assert "[cache]" in capsys.readouterr().out

    def test_decide_open_reports_evidence(self, capsys, tmp_path):
        assert main(["decide", "4", "3", "0", "2", "--budget", "3000",
                     "--dir", str(tmp_path / "u")]) == 0
        out = capsys.readouterr().out
        assert "verdict: open" in out
        assert "evidence:" in out

    def test_decide_json(self, capsys, tmp_path):
        assert main(["decide", "4", "5", "0", "1", "--json", "--no-cache",
                     "--dir", str(tmp_path / "u")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["solvability"] == "not wait-free solvable"
        assert payload["certificate"]["kind"] == "value-padding"
        # Per-tier wall clock: this verdict is decided at tier 2, so
        # tiers 1-2 are timed and the later tiers never ran.
        assert list(payload["timings"]) == ["closed-form", "value-padding"]

    def test_decide_json_open_reports_consumed_budget(self, capsys, tmp_path):
        assert main(["decide", "4", "3", "0", "2", "--json", "--no-cache",
                     "--max-rounds", "1", "--dir", str(tmp_path / "u")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["solvability"] == "open"
        assert list(payload["timings"]) == [
            "closed-form", "value-padding", "reduction-closure",
            "decision-map",
        ]
        assert payload["budget_consumed"]["rounds_searched"] == 1
        assert payload["budget_consumed"]["assignments_tried"] > 0

    def test_decide_malformed_parameters(self, capsys, tmp_path):
        assert main(["decide", "0", "3", "0", "2",
                     "--dir", str(tmp_path / "u")]) == 2
        assert "error:" in capsys.readouterr().err


class TestUniverseCheckCommand:
    def test_check_replays_store_certificates(self, capsys, tmp_path):
        store_dir = str(tmp_path / "universe")
        assert main(["universe", "build", "--max-n", "5", "--max-m", "4",
                     "--dir", store_dir]) == 0
        capsys.readouterr()
        assert main(["universe", "check", "--dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "all OK" in out

    def test_check_replays_cached_certificates_too(self, capsys, tmp_path):
        # A decide outside the built rectangle leaves a certificate only
        # in the decision cache; check must replay (not skip) it.
        store_dir = str(tmp_path / "universe")
        assert main(["universe", "build", "--max-n", "4", "--max-m", "3",
                     "--dir", store_dir]) == 0
        assert main(["decide", "9", "3", "0", "9", "--dir", store_dir]) == 0
        capsys.readouterr()
        assert main(["universe", "check", "--dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "1 cached certificates" in out
        assert "all OK" in out

    def test_check_missing_store(self, capsys, tmp_path):
        assert main(["universe", "check",
                     "--dir", str(tmp_path / "nope")]) == 2

    def test_build_close_open(self, capsys, tmp_path):
        store_dir = str(tmp_path / "universe")
        assert main(["universe", "build", "--max-n", "6", "--max-m", "4",
                     "--dir", store_dir, "--close-open",
                     "--budget", "3000", "--max-rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "close-open sweep:" in out
        assert "OPEN before" in out


class TestExploreCommand:
    def test_explore_table(self, capsys):
        assert main(["explore", "--tasks", "wsb,renaming", "--n", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "wsb" in out and "renaming" in out
        assert "OK" in out

    def test_explore_unknown_task(self, capsys):
        assert main(["explore", "--tasks", "nope"]) == 2
        assert "unknown exploration task" in capsys.readouterr().err

    def test_explore_json_stdout(self, capsys):
        assert main(["explore", "--tasks", "wsb", "--n", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tasks"] == ["wsb"]
        assert payload["core"] == "compiled"
        assert payload["failures"] == 0
        (row,) = payload["results"]
        assert row["name"] == "wsb" and row["n"] == 2
        assert row["runs"] == 2 and row["violations"] == 0
        assert row["seconds"] > 0  # per-job timing
        assert row["stats"]["forks"] >= 1  # engine stats in the payload

    def test_explore_json_file(self, capsys, tmp_path):
        path = tmp_path / "explore.json"
        assert (
            main(["explore", "--tasks", "wsb", "--n", "2", "--json", str(path)])
            == 0
        )
        out = capsys.readouterr().out
        assert f"wrote {path}" in out
        assert "task" in out  # ASCII table still printed with a path
        payload = json.loads(path.read_text())
        assert payload["results"][0]["name"] == "wsb"

    def test_explore_generator_core(self, capsys):
        assert (
            main(
                ["explore", "--tasks", "wsb", "--n", "2",
                 "--core", "generator", "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["core"] == "generator"
        assert payload["results"][0]["core"] == "generator"

    def test_explore_subtree_sharding(self, capsys):
        assert (
            main(
                ["explore", "--tasks", "renaming", "--n", "3",
                 "--jobs", "2", "--shard-depth", "2", "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        (row,) = payload["results"]
        assert row["runs"] == 1680
        assert row["shards"] == 9

    def test_explore_json_reports_election_refutation(self, capsys):
        # Election violations are the expected model-checking outcome,
        # not a failure.
        assert main(["explore", "--tasks", "election", "--n", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"][0]["violations"] > 0
        assert payload["failures"] == 0
