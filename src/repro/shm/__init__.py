"""The asynchronous wait-free shared-memory substrate (Section 2).

Generator-based processes over single-writer multi-reader atomic register
arrays, with snapshots (primitive and register-implemented), one-shot
immediate snapshots, task oracles for the enriched model ``ASM[T]``,
adversarial schedulers including exhaustive interleaving exploration, and
the validation harness tying runs back to task specifications.
"""

from .explore import (
    ExplorationBudgetExceeded,
    count_interleavings,
    explore_all_participant_subsets,
    explore_interleavings,
)
from .harness import (
    CheckReport,
    Violation,
    check_algorithm,
    check_algorithm_exhaustive,
    check_comparison_based,
    check_index_independence,
    validate_run,
)
from .immediate_snapshot import (
    LevelCell,
    check_immediate_snapshot_views,
    immediate_snapshot,
)
from .ops import Invoke, Nop, Op, Read, Snapshot, Write
from .oracles import (
    AssignmentStrategy,
    ExplicitStrategy,
    GSBOracle,
    LexMinStrategy,
    OracleUsageError,
    RandomStrategy,
    colliding_slot_strategy,
    perfect_renaming_oracle,
    renaming_oracle,
    slot_oracle,
)
from .registers import RegisterPermissionError, SharedArray, SharedMemory
from .runtime import (
    Action,
    Algorithm,
    CrashAction,
    NonTerminationError,
    ProcessContext,
    ProtocolError,
    RunResult,
    Runtime,
    StepAction,
    StopAction,
    TraceEvent,
    default_identities,
    run_algorithm,
)
from .schedulers import (
    BlockScheduler,
    CrashScheduler,
    ListScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SoloScheduler,
    random_crash_schedule,
)
from .snapshot_impl import (
    EMPTY_CELL,
    RegisterSnapshot,
    SnapCell,
    snapshot_array_initial,
)

__all__ = [
    "Action",
    "Algorithm",
    "AssignmentStrategy",
    "BlockScheduler",
    "CheckReport",
    "CrashAction",
    "CrashScheduler",
    "EMPTY_CELL",
    "ExplicitStrategy",
    "ExplorationBudgetExceeded",
    "GSBOracle",
    "Invoke",
    "LevelCell",
    "LexMinStrategy",
    "ListScheduler",
    "Nop",
    "NonTerminationError",
    "Op",
    "OracleUsageError",
    "ProcessContext",
    "ProtocolError",
    "RandomScheduler",
    "RandomStrategy",
    "Read",
    "RegisterPermissionError",
    "RegisterSnapshot",
    "RoundRobinScheduler",
    "RunResult",
    "Runtime",
    "SharedArray",
    "SharedMemory",
    "SnapCell",
    "Snapshot",
    "SoloScheduler",
    "StepAction",
    "StopAction",
    "TraceEvent",
    "Violation",
    "Write",
    "check_algorithm",
    "check_algorithm_exhaustive",
    "check_comparison_based",
    "check_immediate_snapshot_views",
    "check_index_independence",
    "colliding_slot_strategy",
    "count_interleavings",
    "default_identities",
    "explore_all_participant_subsets",
    "explore_interleavings",
    "immediate_snapshot",
    "perfect_renaming_oracle",
    "random_crash_schedule",
    "renaming_oracle",
    "run_algorithm",
    "slot_oracle",
    "snapshot_array_initial",
    "validate_run",
]
