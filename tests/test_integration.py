"""Cross-module integration tests: the paper's storyline end to end.

Each test stitches several subsystems together the way the paper's
narrative does — from raw task definitions through protocols on the
simulator to the regenerated artifacts.
"""

from repro.algorithms import (
    figure2_renaming,
    figure2_system_factory,
    figure2_task,
    gsb_from_perfect_renaming,
    perfect_renaming_system_factory,
)
from repro.analysis import figure1, table1
from repro.core import (
    Solvability,
    SymmetricGSBTask,
    canonical_representative,
    classify,
    election,
    perfect_renaming,
    weak_symmetry_breaking,
)
from repro.shm import check_algorithm
from repro.topology import election_impossibility, search_decision_map, ISProtocolComplex


class TestStoryline:
    def test_universality_covers_every_canonical_paper_task(self):
        """Theorem 8 solves each of Figure 1's seven tasks on the simulator."""
        n = 6
        for node in figure1().nodes:
            task = SymmetricGSBTask(n, 3, *node)
            report = check_algorithm(
                task,
                gsb_from_perfect_renaming(task),
                n,
                system_factory=perfect_renaming_system_factory(n, seed=sum(node)),
                runs=12,
                seed=node[0] * 10 + node[1],
            )
            assert report.ok, (node, report.violations[:2])

    def test_figure2_output_solves_the_kernel_level_spec(self):
        """Figure 2's runs land inside the (n+1)-renaming kernel set."""
        n = 5
        task = figure2_task(n)
        report = check_algorithm(
            task,
            figure2_renaming(),
            n,
            system_factory=figure2_system_factory(n, seed=1),
            runs=40,
            seed=2,
        )
        assert report.ok
        # The task itself sits inside the family structure consistently.
        representative = canonical_representative(task)
        assert representative.parameters == (n, n + 1, 0, 1)

    def test_classifier_agrees_with_topology_on_small_cases(self):
        """Where both the classifier and the complex search apply, they agree."""
        # Election: classifier says unsolvable; complexes refute r=1,2.
        verdict, _ = classify(election(3))
        assert verdict is Solvability.UNSOLVABLE
        assert election_impossibility(3, 1).election_impossible
        assert election_impossibility(3, 2).election_impossible

        # WSB at prime-power n: both say unsolvable.
        verdict, _ = classify(weak_symmetry_breaking(3))
        assert verdict is Solvability.UNSOLVABLE
        result = search_decision_map(
            weak_symmetry_breaking(3), ISProtocolComplex(3, 1)
        )
        assert not result.solvable

        # Perfect renaming: unsolvable on both sides.
        verdict, _ = classify(perfect_renaming(2))
        assert verdict is Solvability.UNSOLVABLE
        result = search_decision_map(perfect_renaming(2), ISProtocolComplex(2, 2))
        assert not result.solvable

    def test_table1_rows_classify_consistently(self):
        """Every Table 1 row's classification is coherent with its kernels."""
        table = table1()
        for row in table.rows:
            task = SymmetricGSBTask(*row.parameters)
            verdict, _ = classify(task)
            if verdict is Solvability.TRIVIAL:
                # Trivial tasks have l = 0 and a wide-enough u (Theorem 9).
                assert row.parameters[2] == 0

    def test_hardest_task_universality_roundtrip(self):
        """The hardest <6,3> task is solved via perfect renaming, and its
        outputs realize exactly the balanced kernel vector."""
        from repro.core import balanced_kernel_vector, counting_vector, kernel_of_counting
        from repro.shm import GSBOracle, RandomScheduler, run_algorithm
        from repro.shm.runtime import default_identities

        n = 6
        task = SymmetricGSBTask(n, 3, 2, 2)
        factory = perfect_renaming_system_factory(n, seed=5)
        arrays, objects = factory()
        result = run_algorithm(
            gsb_from_perfect_renaming(task),
            default_identities(n),
            RandomScheduler(3),
            arrays=arrays,
            objects=objects,
        )
        kernel = kernel_of_counting(counting_vector(result.outputs, 3))
        assert kernel == balanced_kernel_vector(n, 3) == (2, 2, 2)
