"""One-shot immediate snapshot (Borowsky-Gafni levels algorithm).

An immediate snapshot is a write-then-read whose views satisfy, for the
views ``V_i`` (sets of (pid, value) pairs) returned to each participant:

* **self-inclusion** — ``i in V_i``;
* **containment** — views are totally ordered by inclusion;
* **immediacy** — ``j in V_i  implies  V_j subseteq V_i``.

These executions are the combinatorial backbone of the paper's Theorem 11
argument: one communication round of immediate snapshots produces exactly
the standard chromatic subdivision modelled in
:mod:`repro.topology.is_complex`.

The implementation is the classical *levels* algorithm: starting at level
n, a process writes its level, snapshots, and returns the set of processes
at its level or below once that set's size reaches its level; otherwise it
descends one level.  Termination is wait-free (a process at level L sees at
least the processes that stopped at or below L).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from .ops import Op, Snapshot, Write
from .runtime import ProcessContext


@dataclass(frozen=True)
class LevelCell:
    """Register contents of one participant of the IS object."""

    level: int
    value: Any


def immediate_snapshot(
    ctx: ProcessContext, array: str, value: Any
) -> Generator[Op, Any, dict[int, Any]]:
    """Participate in a one-shot immediate snapshot.

    Args:
        ctx: process context.
        array: shared array (initial value None) dedicated to this IS
            instance; each process participates at most once.
        value: the value to contribute.

    Returns:
        The view: a dict ``pid -> contributed value`` satisfying
        self-inclusion, containment and immediacy.
    """
    level = ctx.n + 1
    while True:
        level -= 1
        if level < 1:
            raise AssertionError(
                "immediate snapshot descended below level 1; "
                "is the array shared with another protocol?"
            )
        yield Write(array, LevelCell(level=level, value=value))
        view = yield Snapshot(array)
        at_or_below = {
            pid: cell.value
            for pid, cell in enumerate(view)
            if cell is not None and cell.level <= level
        }
        if len(at_or_below) >= level:
            return at_or_below


def check_immediate_snapshot_views(views: dict[int, dict[int, Any]]) -> list[str]:
    """Validate the three IS properties over the views of one run.

    Returns a list of human-readable violations (empty when all hold).
    ``views`` maps each participating pid to the view it obtained.
    """
    problems: list[str] = []
    for pid, view in views.items():
        if pid not in view:
            problems.append(f"self-inclusion: {pid} not in its own view {view}")
    ordered = sorted(views.items(), key=lambda item: len(item[1]))
    for (pid_a, view_a), (pid_b, view_b) in zip(ordered, ordered[1:]):
        if not set(view_a) <= set(view_b):
            problems.append(
                f"containment: view of {pid_a} ({sorted(view_a)}) not within "
                f"view of {pid_b} ({sorted(view_b)})"
            )
    for pid_i, view_i in views.items():
        for pid_j in view_i:
            if pid_j == pid_i or pid_j not in views:
                continue
            if not set(views[pid_j]) <= set(view_i):
                problems.append(
                    f"immediacy: {pid_j} in view of {pid_i} but view of "
                    f"{pid_j} ({sorted(views[pid_j])}) not within "
                    f"({sorted(view_i)})"
                )
    return problems
