"""Tests for subtree-parallel exploration (the sharded DFS frontier)."""

import warnings
from collections import Counter

import pytest

from repro.shm import (
    EngineStats,
    ExplorationBudgetExceeded,
    PrefixSharingEngine,
    default_shard_depth,
    explore_decided_parallel,
    explore_one,
    get_spec,
    make_spec_machine,
)
from repro.shm.parallel import shard_frontier


class TestShardFrontier:
    def test_prefixes_partition_the_tree(self):
        make = make_spec_machine(get_spec("renaming"), 3)
        prefixes, shallow, forks = shard_frontier(make, 2)
        # Depth-2 frontier of a 3-process tree with everyone enabled: 9.
        assert len(prefixes) == 9
        assert sorted(prefixes) == [
            (a, b) for a in range(3) for b in range(3)
        ]
        assert shallow == Counter()
        # One fork per extra branch: 2 at the root, 2 per depth-1 node.
        assert forks == 2 + 3 * 2

    def test_shallow_leaves_counted(self):
        # wsb at n=2 completes in 2 steps: a depth-3 walk finds only
        # leaves above the frontier.
        make = make_spec_machine(get_spec("wsb"), 2)
        prefixes, shallow, _forks = shard_frontier(make, 3)
        assert prefixes == []
        assert sum(shallow.values()) == 2

    def test_depth_zero_is_one_shard(self):
        make = make_spec_machine(get_spec("wsb"), 2)
        prefixes, shallow, forks = shard_frontier(make, 0)
        assert prefixes == [()]
        assert shallow == Counter() and forks == 0

    def test_frontier_width_is_capped(self):
        # A huge shard_depth must not materialize the whole tree in the
        # parent: the walk stops deepening at the shard ceiling and the
        # shards simply stay bigger.
        make = make_spec_machine(get_spec("renaming"), 3)
        prefixes, _shallow, _forks = shard_frontier(make, 50, max_shards=5)
        assert len(prefixes) == 9  # 3 < 5 at depth 1, 9 >= 5 stops depth 2
        assert all(len(prefix) == 2 for prefix in prefixes)

    def test_walk_enforces_budget_on_shallow_leaves(self):
        make = make_spec_machine(get_spec("wsb"), 2)
        with pytest.raises(ExplorationBudgetExceeded):
            shard_frontier(make, 4, max_runs=1)


MATRIX = [
    ("wsb", 2), ("wsb", 3), ("election", 3), ("renaming", 3), ("wsb-grh", 3),
]


class TestParallelEquivalence:
    @pytest.mark.parametrize("name,n", MATRIX)
    @pytest.mark.parametrize("core", ["compiled", "generator"])
    def test_matches_serial_multiset(self, name, n, core):
        factory = make_spec_machine(get_spec(name), n)
        serial = PrefixSharingEngine(factory).decided_vectors()
        outcome = explore_decided_parallel(
            name, n, jobs=2, shard_depth=2, core=core
        )
        assert outcome.decisions == serial
        assert outcome.shards > 0

    def test_serial_shards_when_jobs_low(self):
        serial = PrefixSharingEngine(
            make_spec_machine(get_spec("renaming"), 3)
        ).decided_vectors()
        outcome = explore_decided_parallel("renaming", 3, jobs=0, shard_depth=2)
        assert outcome.decisions == serial
        assert not outcome.pooled

    def test_deep_shard_depth_past_leaves(self):
        # Shard depth beyond the shortest runs: completed runs above the
        # frontier are counted once, subtrees below explored normally.
        serial = PrefixSharingEngine(
            make_spec_machine(get_spec("wsb"), 3)
        ).decided_vectors()
        outcome = explore_decided_parallel("wsb", 3, jobs=2, shard_depth=4)
        assert outcome.decisions == serial

    def test_stats_merge_across_shards(self):
        stats = EngineStats()
        outcome = explore_decided_parallel(
            "renaming", 3, jobs=0, shard_depth=2, stats=stats
        )
        assert outcome.stats is stats
        assert stats.runs == sum(
            1 for _ in PrefixSharingEngine(
                make_spec_machine(get_spec("renaming"), 3)
            ).runs()
        ) or stats.runs > 0  # per-shard memos may materialize more runs
        assert stats.nodes > 0 and stats.memo_entries > 0

    def test_budget_applies_to_merged_total(self):
        with pytest.raises(ExplorationBudgetExceeded):
            explore_decided_parallel(
                "renaming", 3, jobs=0, shard_depth=2, max_runs=50
            )

    def test_budget_is_per_exploration_not_per_accumulator(self):
        # A shared stats accumulator spanning several explorations must
        # not make later in-budget explorations trip the budget.
        single = explore_decided_parallel("renaming", 3, jobs=0, shard_depth=2)
        budget = single.stats.runs + 10  # roomy for one, tight for three
        stats = EngineStats()
        for _ in range(3):
            outcome = explore_decided_parallel(
                "renaming", 3, jobs=0, shard_depth=2, max_runs=budget,
                stats=stats,
            )
            assert sum(outcome.decisions.values()) == 1680
        assert stats.runs == 3 * single.stats.runs  # accumulator past budget
        assert stats.runs > budget

    def test_negative_shard_depth_rejected(self):
        with pytest.raises(ValueError, match="shard depth"):
            explore_decided_parallel("wsb", 2, jobs=0, shard_depth=-1)


class TestExploreOneParallel:
    def test_explore_one_with_jobs(self):
        serial = explore_one("renaming", 3)
        parallel = explore_one("renaming", 3, jobs=2, shard_depth=2)
        assert (parallel.runs, parallel.distinct, parallel.violations) == (
            serial.runs, serial.distinct, serial.violations
        )
        assert parallel.shards == 9

    def test_shard_depth_alone_enables_sharding(self):
        result = explore_one("wsb", 3, shard_depth=1)
        assert result.shards == 3
        assert result.runs == 6

    def test_unregistered_spec_falls_back_loudly(self):
        from repro.shm.engine import ExplorationSpec

        spec = get_spec("wsb")
        rogue = ExplorationSpec(
            name="rogue-wsb",
            description="registered nowhere",
            task_factory=spec.task_factory,
            algorithm_factory=spec.algorithm_factory,
            system_factory=spec.system_factory,
        )
        with pytest.warns(RuntimeWarning, match="registry-resolvable"):
            result = explore_one(rogue, 3, jobs=2, shard_depth=2)
        assert result.runs == 6  # serial exploration still correct
        assert result.shards == 0
