"""The containment partial order on GSB tasks (Section 4.4).

Writing ``S(T)`` for the output-vector set of T, a task T1 is *at least as
hard* as T2 when ``S(T1) subset-of S(T2)``: any algorithm solving T1 also
solves T2 (every T1-legal output is T2-legal).  Lemmas 4 and 5 show
hardness is monotone in the bounds; Theorem 5 identifies the hardest
``<n, m, -, ->`` task; Theorem 6 gives bound-tightening inclusions; and
Figure 1 draws the Hasse diagram of canonical ``<6, 3, -, ->`` tasks.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import networkx as nx

from .canonical import canonical_representative, is_canonical
from .feasibility import feasible_bound_pairs
from .gsb import SymmetricGSBTask


def is_harder(task: SymmetricGSBTask, other: SymmetricGSBTask) -> bool:
    """True when ``task`` is at least as hard: ``S(task) subset S(other)``."""
    return other.includes(task)


def is_strictly_harder(task: SymmetricGSBTask, other: SymmetricGSBTask) -> bool:
    """Strict hardness: containment holds and the tasks differ."""
    return is_harder(task, other) and not task.same_task(other)


def check_lemma_4(task: SymmetricGSBTask, wider_high: int) -> bool:
    """Lemma 4: raising u enlarges (weakly) the output set."""
    n, m, low, high = task.parameters
    if wider_high < high:
        raise ValueError(f"lemma 4 needs u' >= u, got {wider_high} < {high}")
    wider = SymmetricGSBTask(n, m, low, wider_high)
    return wider.includes(task)


def check_lemma_5(task: SymmetricGSBTask, smaller_low: int) -> bool:
    """Lemma 5: lowering l enlarges (weakly) the output set."""
    n, m, low, high = task.parameters
    if smaller_low > low:
        raise ValueError(f"lemma 5 needs l' <= l, got {smaller_low} > {low}")
    wider = SymmetricGSBTask(n, m, smaller_low, high)
    return wider.includes(task)


def hardest(n: int, m: int) -> SymmetricGSBTask:
    """Theorem 5: ``<n, m, floor(n/m), ceil(n/m)>`` is the hardest feasible
    ``<n, m, -, ->`` task: it is included in every feasible sibling."""
    if not 1 <= m <= n:
        raise ValueError(f"need 1 <= m <= n, got m={m}, n={n}")
    return SymmetricGSBTask(n, m, n // m, math.ceil(n / m))


def check_theorem_5(n: int, m: int) -> bool:
    """The hardest task is included in every feasible ``<n, m, l, u>``."""
    bottom = hardest(n, m)
    return all(
        SymmetricGSBTask(n, m, low, high).includes(bottom)
        for low, high in feasible_bound_pairs(n, m)
    )


def check_theorem_6(task: SymmetricGSBTask) -> bool:
    """Theorem 6 inclusions for one feasible task.

    (i)  l' = n - u(m-1) >= l  implies  S(<n,m,l',u>) subset S(task);
    (ii) u' = n - l(m-1) <= u  implies  S(<n,m,l,u'>) subset S(task).
    """
    n, m, low, high = task.parameters
    tightened_low = n - high * (m - 1)
    if tightened_low >= low:
        inner = SymmetricGSBTask(n, m, tightened_low, high)
        if not task.includes(inner):
            return False
    tightened_high = n - low * (m - 1)
    if tightened_high <= high:
        inner = SymmetricGSBTask(n, m, low, tightened_high)
        if not task.includes(inner):
            return False
    return True


def canonical_family(n: int, m: int) -> list[SymmetricGSBTask]:
    """All canonical feasible ``<n, m, -, ->`` tasks (Figure 1's nodes).

    One representative per synonym class, ordered by (l, u).
    """
    return [
        task
        for low, high in feasible_bound_pairs(n, m)
        if is_canonical(task := SymmetricGSBTask(n, m, low, high))
    ]


def containment_digraph(tasks: Sequence[SymmetricGSBTask]) -> nx.DiGraph:
    """Full strict-containment relation as a DAG.

    Edge ``a -> b`` means ``S(a)`` strictly contains ``S(b)`` — i.e. b is
    strictly harder — matching Figure 1's arrow convention
    ("A -> B means A strictly includes B").
    Nodes are the tasks' ``(l, u)`` canonical parameters.
    """
    graph = nx.DiGraph()
    for task in tasks:
        graph.add_node(_node_key(task), task=task)
    for outer in tasks:
        for inner in tasks:
            if outer is inner:
                continue
            if is_strictly_harder(inner, outer):
                graph.add_edge(_node_key(outer), _node_key(inner))
    return graph


def hasse_diagram(tasks: Sequence[SymmetricGSBTask]) -> nx.DiGraph:
    """Transitive reduction of the containment DAG: Figure 1's edges."""
    full = containment_digraph(tasks)
    reduced = nx.transitive_reduction(full)
    # transitive_reduction drops node attributes; restore them.
    for node, data in full.nodes(data=True):
        reduced.add_node(node, **data)
    return reduced


def figure1_hasse(n: int = 6, m: int = 3) -> nx.DiGraph:
    """The Hasse diagram of canonical ``<n, m, -, ->`` tasks.

    With the paper's defaults (n=6, m=3) this regenerates Figure 1:
    seven canonical tasks with the chain
    ``(0,6) -> (0,5) -> (0,4) -> {(1,4), (0,3)} -> (1,3) -> (2,2)``.
    """
    return hasse_diagram(canonical_family(n, m))


def chains(graph: nx.DiGraph) -> list[list[tuple[int, int]]]:
    """All maximal source-to-sink chains of a Hasse diagram."""
    sources = [node for node in graph if graph.in_degree(node) == 0]
    sinks = [node for node in graph if graph.out_degree(node) == 0]
    found = []
    for source in sources:
        for sink in sinks:
            found.extend(nx.all_simple_paths(graph, source, sink))
    return [list(path) for path in found]


def incomparable_pairs(
    tasks: Iterable[SymmetricGSBTask],
) -> list[tuple[SymmetricGSBTask, SymmetricGSBTask]]:
    """Task pairs with neither containment (Section 7 asks about these).

    For n=6, m=3 the paper points out <6,3,1,4> and <6,3,0,3> are
    incomparable.
    """
    tasks = list(tasks)
    pairs = []
    for i, first in enumerate(tasks):
        for second in tasks[i + 1 :]:
            if not first.includes(second) and not second.includes(first):
                pairs.append((first, second))
    return pairs


def _node_key(task: SymmetricGSBTask) -> tuple[int, int]:
    canonical = canonical_representative(task)
    return (canonical.low, canonical.high)
