"""Distributed graph coloring: randomized (Delta+1) and Cole-Vishkin rings.

Two classic symmetry-breaking colorers for the LOCAL model:

* :class:`RandomizedColoring` — each undecided node proposes a random color
  from its remaining palette; proposals unique in the neighbourhood (and
  compatible with finalized neighbours) are kept.  Palettes of size
  ``deg+1`` guarantee progress; O(log n) rounds with high probability.
* :func:`run_cole_vishkin` — the deterministic O(log* n) color reduction on
  *oriented rings*: starting from unique identities, each step recodes a
  node's color as (position, value) of the lowest bit differing from its
  predecessor's color, collapsing the palette to 6 colors exponentially
  fast; three final "shift-down" rounds reach 3 colors.
"""

from __future__ import annotations

from typing import Any, Mapping

import networkx as nx

from .sync_net import Node, NodeAlgorithm, NodeContext, SyncNetwork, SyncRunResult


class RandomizedColoring(NodeAlgorithm):
    """Randomized (Delta+1)-coloring, propose/announce state machine."""

    def init(self, ctx: NodeContext) -> None:
        ctx.state["taken"] = set()
        ctx.state["candidate"] = None
        ctx.state["announcing"] = False

    def send(self, ctx: NodeContext) -> Any:
        if ctx.state["announcing"]:
            return ("final", ctx.state["candidate"])
        palette = [
            color
            for color in range(1, ctx.degree + 2)
            if color not in ctx.state["taken"]
        ]
        ctx.state["candidate"] = ctx.rng.choice(palette)
        return ("cand", ctx.state["candidate"])

    def receive(self, ctx: NodeContext, messages: Mapping[Node, Any]) -> Any:
        for kind, payload in messages.values():
            if kind == "final":
                ctx.state["taken"].add(payload)
        if ctx.state["announcing"]:
            return ctx.state["candidate"]
        candidate = ctx.state["candidate"]
        rival_candidates = {
            payload for kind, payload in messages.values() if kind == "cand"
        }
        if candidate not in ctx.state["taken"] and candidate not in rival_candidates:
            ctx.state["announcing"] = True
        return None


def run_randomized_coloring(
    graph: nx.Graph, seed: int = 0, max_rounds: int = 10_000
) -> SyncRunResult:
    """Run the randomized colorer; outputs are colors in [1..deg+1]."""
    network = SyncNetwork(graph, RandomizedColoring, seed=seed)
    return network.run(max_rounds=max_rounds)


def check_coloring(graph: nx.Graph, colors: Mapping[Node, int]) -> list[str]:
    """Proper-coloring validation; returns violations."""
    problems = []
    for first, second in graph.edges:
        if colors.get(first) == colors.get(second):
            problems.append(
                f"edge ({first}, {second}) monochromatic in color {colors.get(first)}"
            )
    missing = [node for node in graph.nodes if node not in colors]
    if missing:
        problems.append(f"uncolored nodes: {missing}")
    return problems


# ----------------------------------------------------------------------
# Cole-Vishkin on oriented rings
# ----------------------------------------------------------------------

def _cv_step(own: int, predecessor: int) -> int:
    """One Cole-Vishkin recode: (index, value) of the lowest differing bit."""
    differing = own ^ predecessor
    index = (differing & -differing).bit_length() - 1
    bit = (own >> index) & 1
    return 2 * index + bit


def cole_vishkin_iterations(max_color: int) -> int:
    """Iterations until the palette collapses to at most 6 colors.

    Tracks the palette bound: b colors (bit length L) recode into at most
    2L colors; iterate until the bound is <= 6.  This is the O(log*)
    schedule every node computes locally from the known identity space.
    """
    bound = max(max_color + 1, 7)
    iterations = 0
    while bound > 6:
        bound = 2 * (bound - 1).bit_length()
        iterations += 1
        if iterations > 64:  # log* of anything physical is tiny
            raise AssertionError("Cole-Vishkin schedule failed to converge")
    return iterations


class ColeVishkinRing(NodeAlgorithm):
    """O(log* n) ring 3-coloring (oriented ring; nodes are 0..n-1).

    Phases: ``iterations`` Cole-Vishkin recoding rounds (colors start as
    identities), then for each color c in 7..3 one shift-down round where
    nodes colored >= c but not less recolor to the smallest color in
    {0, 1, 2} unused by their two neighbours.  Output colors are 0, 1, 2.
    """

    def __init__(self, ring_size: int, iterations: int):
        self._n = ring_size
        self._iterations = iterations

    def init(self, ctx: NodeContext) -> None:
        ctx.state["color"] = ctx.identity
        ctx.state["cv_left"] = self._iterations
        ctx.state["reduce"] = 7  # next color class to eliminate

    def _predecessor(self, ctx: NodeContext) -> Node:
        return (ctx.node - 1) % self._n

    def send(self, ctx: NodeContext) -> Any:
        return ("color", ctx.state["color"])

    def receive(self, ctx: NodeContext, messages: Mapping[Node, Any]) -> Any:
        colors = {
            sender: payload
            for sender, (kind, payload) in messages.items()
            if kind == "color"
        }
        if ctx.state["cv_left"] > 0:
            predecessor = self._predecessor(ctx)
            ctx.state["color"] = _cv_step(ctx.state["color"], colors[predecessor])
            ctx.state["cv_left"] -= 1
            return None
        # Shift-down rounds: eliminate one color class per round.
        target = ctx.state["reduce"]
        if ctx.state["color"] >= target:
            neighbor_colors = set(colors.values())
            ctx.state["color"] = min(
                color for color in (0, 1, 2) if color not in neighbor_colors
            )
        ctx.state["reduce"] -= 1
        if ctx.state["reduce"] < 3:
            return ctx.state["color"]
        return None


def run_cole_vishkin(n: int, seed: int = 0) -> SyncRunResult:
    """3-color the oriented n-ring deterministically (seed only shuffles ids)."""
    if n < 3:
        raise ValueError(f"a ring needs at least 3 nodes, got {n}")
    import random

    graph = nx.cycle_graph(n)
    identities = {node: node + 1 for node in graph.nodes}
    if seed:
        shuffled = list(identities.values())
        random.Random(seed).shuffle(shuffled)
        identities = {node: shuffled[node] for node in graph.nodes}
    iterations = cole_vishkin_iterations(max(identities.values()))
    network = SyncNetwork(
        graph,
        lambda: ColeVishkinRing(n, iterations),
        seed=seed,
        identities=identities,
    )
    return network.run(max_rounds=iterations + 10)
