"""Many-concurrent-clients smoke over a real socket.

What this pins: the service answers every concurrent client correctly
(each response compared against single-threaded ground truth computed
up front), the per-endpoint metrics account for every request, and the
storm does not corrupt the process-wide hot-cell LRU — lookups after
the storm still serve exactly the JSON backend's answers.
"""

import http.client
import json
import threading

import pytest

from repro.serve import BackgroundServer
from repro.universe import UniverseStore

CLIENTS = 8
REQUESTS_PER_CLIENT = 25


@pytest.fixture(scope="module")
def root(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-load") / "store"
    store = UniverseStore(root)
    store.build(8, 4)
    store.pack()
    return root


@pytest.fixture(scope="module")
def node_keys(root):
    graph = UniverseStore(root, backend="json").load()
    return sorted(node.key for node in graph.nodes())


def test_concurrent_decides_are_correct_and_fully_accounted(root, node_keys):
    expected = {}
    reference = UniverseStore(root, backend="json")
    for key in node_keys:
        expected[key] = reference.node_at(*key).solvability

    failures: list[str] = []
    barrier = threading.Barrier(CLIENTS)

    def client(worker: int) -> None:
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=30
        )
        try:
            barrier.wait(timeout=30)  # all clients hit the server at once
            for index in range(REQUESTS_PER_CLIENT):
                key = node_keys[(worker * 31 + index * 7) % len(node_keys)]
                n, m, low, high = key
                connection.request(
                    "GET", f"/decide?n={n}&m={m}&low={low}&high={high}"
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
                if response.status != 200:
                    failures.append(f"{key}: status {response.status}")
                elif payload["solvability"] != expected[key]:
                    failures.append(
                        f"{key}: served {payload['solvability']!r}, "
                        f"expected {expected[key]!r}"
                    )
        except Exception as error:  # noqa: BLE001 - report, don't hang
            failures.append(f"worker {worker}: {type(error).__name__}: {error}")
        finally:
            connection.close()

    with BackgroundServer(root, backend="binary") as server:
        threads = [
            threading.Thread(target=client, args=(worker,))
            for worker in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures[:10]

        # Metrics account for every request exactly once.
        status, _, stats = server.get("/stats")
        assert status == 200
        assert (
            stats["endpoints"]["decide"]["requests"]
            == CLIENTS * REQUESTS_PER_CLIENT
        )
        assert stats["endpoints"]["decide"]["errors"] == 0

    # The storm must not have corrupted the shared hot-cell LRU: every
    # post-storm lookup still matches the JSON backend ground truth.
    survivor = UniverseStore(root, backend="binary")
    for key in node_keys:
        assert survivor.node_at(*key).solvability == expected[key]


def test_concurrent_mixed_endpoints(root, node_keys):
    errors: list[str] = []

    def client(worker: int) -> None:
        try:
            for index in range(6):
                kind = (worker + index) % 4
                if kind == 0:
                    n, m, low, high = node_keys[worker % len(node_keys)]
                    status, _, payload = server.get(
                        f"/decide?n={n}&m={m}&low={low}&high={high}"
                    )
                elif kind == 1:
                    status, _, payload = server.get(
                        "/cones?n=6&m=3&low=1&high=4"
                    )
                elif kind == 2:
                    status, _, payload = server.get("/frontier")
                else:
                    status, _, payload = server.post(
                        "/batch",
                        {
                            "requests": [
                                {
                                    "endpoint": "decide",
                                    "params": {
                                        "n": 6, "m": 3, "low": 1, "high": 4,
                                    },
                                },
                                {"endpoint": "frontier", "params": {}},
                            ]
                        },
                    )
                if status != 200:
                    errors.append(f"worker {worker} kind {kind}: {status}")
        except Exception as error:  # noqa: BLE001
            errors.append(f"worker {worker}: {type(error).__name__}: {error}")

    with BackgroundServer(root, backend="binary") as server:
        threads = [
            threading.Thread(target=client, args=(worker,))
            for worker in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
    assert not errors, errors[:10]


def test_etag_revalidation_under_concurrency(root):
    """Concurrent revalidations all see the same stable ETag and 304."""
    results: list[tuple[int, str | None]] = []
    lock = threading.Lock()

    def client() -> None:
        status, headers, _ = server.get("/decide?n=6&m=3&low=1&high=4")
        etag = headers.get("ETag")
        status2, _, _ = server.get(
            "/decide?n=6&m=3&low=1&high=4", headers={"If-None-Match": etag}
        )
        with lock:
            results.append((status2, etag))

    with BackgroundServer(root, backend="binary") as server:
        threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
    assert len(results) == CLIENTS
    statuses = {status for status, _ in results}
    etags = {etag for _, etag in results}
    assert statuses == {304}
    assert len(etags) == 1
