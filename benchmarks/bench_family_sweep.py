"""Experiment E-SWEEP: universe-scale family sweeps on the store + census.

Workload: the structural side of the paper at sweep scale — the memoized
``FamilyStore`` serving whole-family entries in O(1) after first access,
the bounded-partition counting DP replacing enumeration for census-style
rollups, and the closed-form census pipeline covering grids the seed's
re-enumerating implementation could only toy with.  Assertions pin the
new paths to the enumerating implementations so a store regression is a
test failure, not a silent slowdown.
"""

from repro.analysis import (
    entry_lookup,
    family_solvability_census,
    run_census,
)
from repro.core import (
    FamilyStore,
    Solvability,
    count_kernel_vectors,
    kernel_vectors,
)


def bench_census_small_grid(benchmark):
    """The smoke census: a small grid, closed forms only, pinned counts."""

    def sweep():
        return run_census(range(2, 13), range(1, 5))

    report = benchmark(sweep)
    totals = report.solvability_totals()
    assert report.feasible_rows == 689
    assert totals[Solvability.TRIVIAL.value] == 177
    assert totals[Solvability.SOLVABLE.value] == 9
    assert totals[Solvability.UNSOLVABLE.value] == 269
    assert totals[Solvability.OPEN.value] == 234


def bench_census_acceptance_grid(benchmark):
    """The acceptance grid n<=20, m<=6: identical to the seed's census."""

    def sweep():
        return family_solvability_census(range(2, 21), range(1, 7))

    census = benchmark(sweep)
    assert census == {
        Solvability.TRIVIAL: 722,
        Solvability.SOLVABLE: 21,
        Solvability.UNSOLVABLE: 1384,
        Solvability.OPEN: 1544,
    }


def bench_store_cold_family(benchmark):
    """First access: one full family annotation (the store's only slow path)."""

    def build():
        store = FamilyStore()
        return store.entries(14, 5)

    entries = benchmark(build)
    assert len(entries) > 20


def bench_store_warm_lookups(benchmark):
    """Dict-indexed entry lookups after the family is cached."""
    store = FamilyStore()
    store.prime([(12, 4)])
    pairs = [entry.parameters[2:] for entry in store.entries(12, 4)]

    def lookups():
        found = 0
        for _ in range(100):
            for low, high in pairs:
                entry = store.entry(12, 4, low, high)
                found += entry.canonical
        return found

    found = benchmark(lookups)
    assert found > 0


def bench_counting_dp_grid(benchmark):
    """Counting DP across a grid, cross-checked against enumeration."""

    def count_grid():
        total = 0
        for n in range(2, 25):
            for m in range(1, min(n, 6) + 1):
                total += count_kernel_vectors(n, m, 0, n)
        return total

    total = benchmark(count_grid)
    assert total == sum(
        len(kernel_vectors(n, m, 0, n))
        for n in range(2, 25)
        for m in range(1, min(n, 6) + 1)
    )


def bench_entry_lookup_o1(benchmark):
    """The atlas row lookup the seed served by full re-enumeration."""
    entry_lookup(16, 5, 1, 6)  # prime the shared store

    def lookups():
        return [entry_lookup(16, 5, 1, 6) for _ in range(500)]

    entries = benchmark(lookups)
    assert all(entry.parameters == (16, 5, 1, 6) for entry in entries)
