"""Unit tests for shared register arrays."""

import pytest

from repro.shm import RegisterPermissionError, SharedArray, SharedMemory


class TestSharedArray:
    def test_initial_value_broadcast(self):
        array = SharedArray("A", 3, initial=0)
        assert array.snapshot() == (0, 0, 0)

    def test_per_cell_initials(self):
        array = SharedArray("A", 3, initial=[1, 2, 3])
        assert array.snapshot() == (1, 2, 3)

    def test_per_cell_initials_arity_checked(self):
        with pytest.raises(ValueError, match="initial values"):
            SharedArray("A", 3, initial=[1, 2])

    def test_write_own_cell(self):
        array = SharedArray("A", 3)
        array.write(1, "x")
        assert array.snapshot() == (None, "x", None)

    def test_read_single_cell(self):
        array = SharedArray("A", 3, initial=[7, 8, 9])
        assert array.read(0, 2) == 9

    def test_versions_track_writes(self):
        array = SharedArray("A", 2)
        array.write(0, "a")
        array.write(0, "b")
        array.write(1, "c")
        assert array.versions() == (2, 1)

    def test_versioned_snapshot(self):
        array = SharedArray("A", 2)
        array.write(0, "a")
        assert array.versioned_snapshot() == (("a", 1), (None, 0))

    def test_index_bounds(self):
        array = SharedArray("A", 2)
        with pytest.raises(IndexError):
            array.read(0, 2)
        with pytest.raises(IndexError):
            array.write(5, "x")

    def test_multi_writer_permission(self):
        single = SharedArray("A", 3)
        with pytest.raises(RegisterPermissionError, match="single-writer"):
            single.write_cell(0, 1, "x")
        multi = SharedArray("B", 3, multi_writer=True)
        multi.write_cell(0, 1, "x")
        assert multi.read(2, 1) == "x"

    def test_operation_counters(self):
        array = SharedArray("A", 2)
        array.write(0, 1)
        array.read(0, 0)
        array.read(0, 1)
        array.snapshot()
        assert array.write_count == 1
        assert array.read_count == 2
        assert array.snapshot_count == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SharedArray("A", 0)


class TestSharedMemory:
    def test_add_and_lookup(self):
        memory = SharedMemory(3)
        memory.add_array("STATE", initial=None)
        assert memory.array("STATE").n == 3

    def test_duplicate_rejected(self):
        memory = SharedMemory(2)
        memory.add_array("A")
        with pytest.raises(ValueError, match="already exists"):
            memory.add_array("A")

    def test_unknown_array_helpful_error(self):
        memory = SharedMemory(2)
        memory.add_array("KNOWN")
        with pytest.raises(KeyError, match="KNOWN"):
            memory.array("MISSING")

    def test_custom_size_array(self):
        memory = SharedMemory(2)
        memory.add_array("GRID", n=9, multi_writer=True)
        assert memory.array("GRID").n == 9

    def test_total_operations(self):
        memory = SharedMemory(2)
        memory.add_array("A")
        memory.add_array("B")
        memory.array("A").write(0, 1)
        memory.array("B").snapshot()
        totals = memory.total_operations()
        assert totals == {"writes": 1, "reads": 0, "snapshots": 1}
