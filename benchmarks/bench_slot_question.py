"""Experiment E-SLOT: Section 6's general question, at its two endpoints.

"Is there a general algorithm that solves (2n-k)-renaming from the k-slot
task?" — the paper answers k = n-1 (Figure 2) and k = 2 (via WSB [29]) and
leaves the middle open.  This bench runs both endpoints and asserts the
open middle raises, reproducing the question's boundary exactly.
"""


from repro.algorithms import (
    OpenProblem,
    renaming_from_slot,
    renaming_target,
    slot_system_factory,
)
from repro.shm import check_algorithm


def bench_slot_endpoint_figure2(benchmark):
    n = 6
    k = n - 1

    def run():
        return check_algorithm(
            renaming_target(n, k),
            renaming_from_slot(n, k),
            n,
            system_factory=slot_system_factory(n, k, seed=1),
            runs=40,
            seed=2,
        )

    report = benchmark(run)
    assert report.ok


def bench_slot_endpoint_wsb_route(benchmark):
    n = 6
    k = 2

    def run():
        return check_algorithm(
            renaming_target(n, k),
            renaming_from_slot(n, k),
            n,
            system_factory=slot_system_factory(n, k, seed=3),
            runs=40,
            seed=4,
        )

    report = benchmark(run)
    assert report.ok


def bench_slot_open_middle_boundary(benchmark):
    def probe():
        closed, open_count = 0, 0
        for n in range(4, 10):
            for k in range(2, n):
                try:
                    renaming_from_slot(n, k)
                    closed += 1
                except OpenProblem:
                    open_count += 1
        return closed, open_count

    closed, open_count = benchmark(probe)
    # Exactly the two endpoints per n are implemented.
    assert closed == sum(1 for n in range(4, 10) for k in (2, n - 1))
    assert open_count == sum(max(0, n - 4) for n in range(4, 10))
