"""Tests for the disk-backed incremental universe store."""

import json

import pytest

from repro.universe import (
    SCHEMA_VERSION,
    UniverseStore,
    build_cell,
    build_rectangle,
)
from repro.universe.persist import cell_from_payload, cell_to_payload


def graph_signature(graph):
    """Comparable dump of a graph: node keys, edges, certificates."""
    return (
        {node.key: (node.solvability, node.mask, node.synonyms) for node in graph.nodes()},
        {(e.source, e.target, e.kind, e.label) for e in graph.edges()},
        dict(graph.certificates),
    )


class TestCellRoundtrip:
    @pytest.mark.parametrize("n,m", [(6, 3), (8, 2), (3, 6), (1, 1)])
    def test_payload_roundtrip_is_identity(self, n, m):
        cell = build_cell(n, m)
        assert cell_from_payload(cell_to_payload(cell)) == cell

    def test_payload_is_json_serializable(self):
        json.dumps(cell_to_payload(build_cell(7, 3)))

    def test_stale_schema_rejected(self):
        payload = cell_to_payload(build_cell(4, 2))
        payload["version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            cell_from_payload(payload)


class TestIncrementalBuild:
    def test_cold_then_warm(self, tmp_path):
        store = UniverseStore(tmp_path / "u")
        cold = store.build(6, 4)
        assert cold.cells_built == cold.cells_total == 24
        assert cold.cells_reused == 0
        warm = store.build(6, 4)
        assert warm.cells_built == 0
        assert warm.cells_reused == 24
        assert warm.seconds < cold.seconds + 1  # sanity; warm is ~free

    def test_widening_builds_only_new_cells(self, tmp_path):
        store = UniverseStore(tmp_path / "u")
        store.build(6, 4)
        widened = store.build(8, 5)
        assert widened.cells_total == 40
        assert widened.cells_reused == 24
        assert widened.cells_built == 16
        assert sorted(store.built_cells()) == [
            (n, m) for n in range(1, 9) for m in range(1, 6)
        ]

    def test_force_rebuilds_everything(self, tmp_path):
        store = UniverseStore(tmp_path / "u")
        store.build(4, 3)
        forced = store.build(4, 3, force=True)
        assert forced.cells_built == forced.cells_total

    def test_schema_bump_forces_rebuild(self, tmp_path):
        store = UniverseStore(tmp_path / "u")
        store.build(4, 3)
        manifest = store.manifest()
        manifest["version"] = SCHEMA_VERSION - 1
        store._write_manifest(manifest)
        rebuilt = store.build(4, 3)
        assert rebuilt.cells_built == rebuilt.cells_total
        assert store.manifest()["version"] == SCHEMA_VERSION

    def test_schema_bump_wipes_out_of_rectangle_shards(self, tmp_path):
        # A stale-schema store must not keep unreadable shards outside
        # the rebuilt rectangle: load() reads every shard on disk.
        store = UniverseStore(tmp_path / "u")
        store.build(6, 4)
        manifest = store.manifest()
        manifest["version"] = SCHEMA_VERSION - 1
        store._write_manifest(manifest)
        store.build(4, 3)  # narrower rectangle than what is on disk
        assert store.built_cells() == [
            (n, m) for n in range(1, 5) for m in range(1, 4)
        ]
        assert graph_signature(store.load()) == graph_signature(
            build_rectangle(4, 3)
        )

    def test_truncated_shard_is_recomputed(self, tmp_path):
        # Shard writes are atomic, but defend against torn files anyway:
        # an unreadable reused shard must be rebuilt, not trusted.
        store = UniverseStore(tmp_path / "u")
        store.build(5, 3)
        store.manifest_path.unlink()
        store.cell_path(4, 2).write_text('{"version":')  # torn write
        store.cell_path(3, 2).write_text("{}\n")  # valid JSON, wrong shape
        report = store.build(5, 3)
        assert report.cells_built == 2
        assert graph_signature(store.load()) == graph_signature(
            build_rectangle(5, 3)
        )

    def test_interrupted_build_heals_manifest(self, tmp_path):
        # Shards written but the manifest never reached disk (crash /
        # Ctrl-C): the next build must re-note the reused cells so
        # stats() reports real counts.
        store = UniverseStore(tmp_path / "u")
        store.build(5, 3)
        store.manifest_path.unlink()
        report = store.build(5, 3)
        assert report.cells_built == 0
        stats = store.stats()
        assert stats["nodes"] == build_rectangle(5, 3).node_count
        assert stats["containment_edges"] > 0

    def test_parallel_build_matches_serial(self, tmp_path):
        serial = UniverseStore(tmp_path / "serial")
        serial.build(7, 4)
        parallel = UniverseStore(tmp_path / "parallel")
        report = parallel.build(7, 4, jobs=2)
        assert report.jobs == 2
        assert graph_signature(serial.load()) == graph_signature(parallel.load())


class TestCorruptionRecovery:
    """Truncated shards, garbage shards, stale manifest entries and
    schema mismatches must each self-heal to a correct rebuild."""

    def test_garbage_shard_with_intact_manifest_heals_on_load(self, tmp_path):
        # The manifest still notes the cell, so build() reuses it; load()
        # must detect the garbage, recompute the cell and rewrite it.
        store = UniverseStore(tmp_path / "u")
        store.build(5, 3)
        store.cell_path(4, 2).write_text("\xfe\xff totally not json")
        assert graph_signature(store.load()) == graph_signature(
            build_rectangle(5, 3)
        )
        # The heal is durable: the shard on disk is valid again.
        assert store.read_cell(4, 2) == build_cell(4, 2)

    def test_truncated_shard_heals_on_load(self, tmp_path):
        store = UniverseStore(tmp_path / "u")
        store.build(5, 3)
        store.cell_path(3, 2).write_text('{"version":')
        assert graph_signature(store.load()) == graph_signature(
            build_rectangle(5, 3)
        )

    def test_single_stale_schema_shard_heals_on_load(self, tmp_path):
        # One shard claims a different schema while the manifest is
        # current (e.g. a partially synced directory): recompute just it.
        store = UniverseStore(tmp_path / "u")
        store.build(5, 3)
        payload = json.loads(store.cell_path(4, 3).read_text())
        payload["version"] = SCHEMA_VERSION + 1
        store.cell_path(4, 3).write_text(json.dumps(payload))
        assert graph_signature(store.load()) == graph_signature(
            build_rectangle(5, 3)
        )
        assert store.read_cell(4, 3) == build_cell(4, 3)

    def test_wrong_shape_shard_heals_on_load(self, tmp_path):
        store = UniverseStore(tmp_path / "u")
        store.build(4, 2)
        store.cell_path(2, 2).write_text('{"version": %d}\n' % SCHEMA_VERSION)
        assert graph_signature(store.load()) == graph_signature(
            build_rectangle(4, 2)
        )

    def test_stale_manifest_entry_is_pruned_on_build(self, tmp_path):
        # A manifest entry whose shard vanished must not inflate stats()
        # and must be recomputed by the next build.
        store = UniverseStore(tmp_path / "u")
        store.build(5, 3)
        store.cell_path(5, 2).unlink()
        report = store.build(5, 3)
        assert report.cells_built == 1
        assert store.stats()["nodes"] == build_rectangle(5, 3).node_count
        assert graph_signature(store.load()) == graph_signature(
            build_rectangle(5, 3)
        )

    def test_healed_load_renotes_manifest(self, tmp_path):
        store = UniverseStore(tmp_path / "u")
        store.build(4, 2)
        store.cell_path(3, 2).write_text("garbage")
        store.load()
        # stats() reads the manifest: the healed cell must be re-noted
        # with real counts, not the garbage's.
        assert store.stats()["nodes"] == build_rectangle(4, 2).node_count


class TestOverrides:
    def test_close_open_overrides_survive_reload(self, tmp_path):
        from repro.core import Solvability
        from repro.decision import DecisionBudget

        store = UniverseStore(tmp_path / "u")
        store.build(6, 6)
        graph = store.load()
        # Simulate a closure: erase a structural verdict on disk is not
        # possible (cells are deterministic), so drive the sweep with a
        # graph whose node was erased and persist its re-derivation.
        graph.override_node((4, 5, 0, 1), "open", "simulated unknown", "")
        from repro.decision import close_open

        report = close_open(graph, DecisionBudget(max_empirical_n=0))
        assert (4, 5, 0, 1) in report.closed

    def test_rerun_with_smaller_budget_keeps_closures(self, tmp_path):
        # A certified closure persisted by one sweep must survive a
        # cheaper re-run (the sweep starts from the applied overrides
        # and the documents are merged, not replaced).
        from repro.decision import DecisionBudget

        store = UniverseStore(tmp_path / "u")
        store.build(4, 3)
        document = {
            "version": SCHEMA_VERSION,
            "budget": {},
            "overrides": {
                "4,3,0,2": {
                    "solvability": "wait-free solvable",
                    "reason": "injected closure",
                    "certificate_id": "ctest",
                    "certificate": {"kind": "theorem"},
                }
            },
        }
        store.overrides_path.write_text(json.dumps(document))
        store.close_open(DecisionBudget(max_empirical_n=0))
        assert "4,3,0,2" in store.read_overrides()["overrides"]
        node = store.load().node((4, 3, 0, 2))
        assert node.solvability == "wait-free solvable"

    def test_corrupt_overrides_file_is_ignored(self, tmp_path):
        store = UniverseStore(tmp_path / "u")
        store.build(4, 3)
        store.overrides_path.write_text("{ not json")
        assert store.read_overrides() == {}
        store.load()  # must not raise

    def test_overrides_applied_at_load(self, tmp_path):
        store = UniverseStore(tmp_path / "u")
        store.build(4, 3)
        document = {
            "version": SCHEMA_VERSION,
            "budget": {},
            "overrides": {
                "4,3,0,2": {
                    "solvability": "wait-free solvable",
                    "reason": "injected for the test",
                    "certificate_id": "ctest",
                    "certificate": {"kind": "theorem"},
                }
            },
        }
        store.overrides_path.write_text(json.dumps(document))
        node = store.load().node((4, 3, 0, 2))
        assert node.solvability == "wait-free solvable"
        assert node.certificate_id == "ctest"
        bare = store.load(apply_overrides=False).node((4, 3, 0, 2))
        assert bare.solvability == "open"

    def test_stats_count_overrides(self, tmp_path):
        store = UniverseStore(tmp_path / "u")
        store.build(4, 3)
        assert store.stats()["overrides"] == 0


class TestLoad:
    def test_load_equals_in_memory_build(self, tmp_path):
        store = UniverseStore(tmp_path / "u")
        store.build(7, 5)
        assert graph_signature(store.load()) == graph_signature(
            build_rectangle(7, 5)
        )

    def test_load_clips_to_sub_rectangle(self, tmp_path):
        store = UniverseStore(tmp_path / "u")
        store.build(7, 5)
        clipped = store.load(max_n=5, max_m=3)
        assert clipped.cells == {
            (n, m) for n in range(1, 6) for m in range(1, 4)
        }
        # Cross-family edges are re-derived for the clipped cell set.
        assert graph_signature(clipped) == graph_signature(build_rectangle(5, 3))

    def test_load_empty_store_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no built cells"):
            UniverseStore(tmp_path / "missing").load()

    def test_stats(self, tmp_path):
        store = UniverseStore(tmp_path / "u")
        store.build(5, 3, jobs=0)
        stats = store.stats()
        assert stats["cells"] == 15
        assert stats["max_n"] == 5
        assert stats["max_m"] == 3
        assert stats["nodes"] == build_rectangle(5, 3).node_count
        assert stats["last_build"]["cells_built"] == 15
