"""Tests for step-table pre-tracing: export in the parent, import in
pool workers.

The parallel quotient path traces the step table once in the parent and
ships it (:meth:`CompiledProtocol.export_table` /
:meth:`~CompiledProtocol.import_table`) so workers do not re-pay the
tracing cost — and, more importantly, so their node numbering matches
the parent's, which keeps the shared orbit memo's stable keys dense.
These tests pin the roundtrip, the structural-mismatch refusal, and the
behavioural identity of an imported table.
"""

import pickle

from repro.shm.engine import get_spec, make_spec_machine, spec_factory


def traced_factory(name="wsb-grh", n=3, frame_nodes=True):
    make_machine = make_spec_machine(
        get_spec(name), n, frame_nodes=frame_nodes
    )
    # Trace a few schedules so the export is non-trivial.
    for first in range(n):
        machine = make_machine()
        machine.step(first)
        while machine.enabled_pids():
            machine.step(min(machine.enabled_pids()))
    return make_machine


class TestExportImport:
    def test_roundtrip_restores_every_array(self):
        donor = traced_factory().program
        table = pickle.loads(pickle.dumps(donor.export_table()))
        fresh = make_spec_machine(
            get_spec("wsb-grh"), 3, frame_nodes=True
        ).program
        assert len(fresh.ops) < len(donor.ops)  # untraced so far
        assert fresh.import_table(table)
        assert fresh.ops == donor.ops
        assert fresh.edges == donor.edges
        assert fresh.parents == donor.parents
        assert fresh.decisions == donor.decisions

    def test_import_refuses_structural_mismatch(self):
        donor = traced_factory("wsb-grh", 3).program
        table = donor.export_table()
        other_size = make_spec_machine(
            get_spec("wsb-grh"), 2, frame_nodes=True
        ).program
        other_spec = make_spec_machine(
            get_spec("renaming"), 3, frame_nodes=True
        ).program
        plain = make_spec_machine(get_spec("wsb-grh"), 3).program
        before = list(plain.ops)
        assert not other_size.import_table(table)
        assert not other_spec.import_table(table)
        assert not plain.import_table(table)  # frame_nodes differs
        assert plain.ops == before  # refusal leaves the table untouched

    def test_imported_table_explores_identically(self):
        from repro.shm.engine import PrefixSharingEngine

        donor_factory = traced_factory()
        table = donor_factory.program.export_table()
        importer = make_spec_machine(
            get_spec("wsb-grh"), 3, frame_nodes=True
        )
        assert importer.program.import_table(table)
        reference = PrefixSharingEngine(
            spec_factory(get_spec("wsb-grh"), 3)
        ).decided_vectors()
        assert PrefixSharingEngine(importer).decided_vectors() == reference

    def test_import_preserves_stable_tokens(self):
        donor_factory = traced_factory()
        donor = donor_factory.program
        table = pickle.loads(pickle.dumps(donor.export_table()))
        importer = make_spec_machine(
            get_spec("wsb-grh"), 3, frame_nodes=True
        ).program
        assert importer.import_table(table)
        tokens = 0
        for node in range(len(donor.ops)):
            assert importer.stable_pc(node) == donor.stable_pc(node)
            if donor.stable_pc(node) is not None:
                tokens += 1
        assert tokens > 0


class TestStablePc:
    def test_tokens_match_across_independent_programs(self):
        first = traced_factory().program
        second = traced_factory().program
        # Same lazily-traced schedules -> same node numbering; the test
        # is that the *digest* agrees without sharing any state.
        matched = 0
        for node in range(min(len(first.ops), len(second.ops))):
            token = first.stable_pc(node)
            if token is not None:
                assert token == second.stable_pc(node)
                matched += 1
        assert matched > 0

    def test_distinct_nodes_distinct_tokens(self):
        program = traced_factory().program
        tokens = [
            program.stable_pc(node)
            for node in range(len(program.ops))
            if program.stable_pc(node) is not None
        ]
        assert len(tokens) == len(set(tokens))

    def test_no_frame_nodes_means_no_tokens(self):
        program = traced_factory(frame_nodes=False).program
        assert all(
            program.stable_pc(node) is None
            for node in range(len(program.ops))
        )
