"""Decision tasks in the style of Section 2.3.

A one-shot decision task is a triple ``(I, O, Delta)`` of input vectors,
output vectors and a relation associating legal outputs with each input.
This module provides the minimal abstract interface the shared-memory
harness validates runs against, plus the identity-input machinery shared by
all GSB tasks: inputs are vectors of *distinct* identities drawn from
``[1..N]`` with ``N = 2n - 1`` (Theorem 1 shows larger identity spaces add
no power, so the paper — and this library — fix N at that value).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Iterator, Sequence


def identity_space(n: int) -> range:
    """The identity universe ``[1..2n-1]`` fixed by Theorem 1."""
    if n < 1:
        raise ValueError(f"need at least one process, got n={n}")
    return range(1, 2 * n)


def input_vectors(n: int) -> Iterator[tuple[int, ...]]:
    """All input vectors: n distinct identities from ``[1..2n-1]``, ordered.

    The i-th entry is the identity of process index i.  There are
    ``(2n-1)! / (n-1)!`` such vectors; callers should only materialize them
    for small n.
    """
    yield from itertools.permutations(identity_space(n), n)


def is_input_vector(vector: Sequence[int], n: int) -> bool:
    """Whether ``vector`` is a legal identity assignment for n processes."""
    if len(vector) != n:
        return False
    if len(set(vector)) != n:
        return False
    space = identity_space(n)
    return all(identity in space for identity in vector)


class Task(ABC):
    """Abstract one-shot decision task on ``n`` processes.

    Subclasses define which output vectors are legal for a given input
    vector.  GSB tasks ignore the input vector entirely (their defining
    "output independence"), but the interface keeps the input so that
    non-GSB tasks can also be validated by the same harness.
    """

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of processes."""

    @abstractmethod
    def is_legal_output(
        self, output: Sequence[int], input_vector: Sequence[int] | None = None
    ) -> bool:
        """Whether a complete decided vector satisfies the task relation."""

    def is_legal_partial_output(
        self,
        output: Sequence[int | None],
        input_vector: Sequence[int] | None = None,
    ) -> bool:
        """Whether a partial decision vector extends to a legal output.

        ``None`` entries stand for processes that have not (yet) decided —
        e.g. crashed processes.  The default implementation tries all
        completions, which is exponential; subclasses with structure
        (like GSB tasks) override it with a polynomial check.
        """
        undecided = [index for index, value in enumerate(output) if value is None]
        if not undecided:
            return self.is_legal_output([v for v in output], input_vector)
        values = self.output_value_range()
        for completion in itertools.product(values, repeat=len(undecided)):
            candidate = list(output)
            for index, value in zip(undecided, completion):
                candidate[index] = value
            if self.is_legal_output(candidate, input_vector):
                return True
        return False

    def output_value_range(self) -> range:
        """Values a completion may use; subclasses narrow this."""
        raise NotImplementedError(
            "is_legal_partial_output needs output_value_range or an override"
        )
