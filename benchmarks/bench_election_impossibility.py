"""Experiment E-ELECT: mechanized Theorem 11.

Paper artifact: Theorem 11, election is not wait-free solvable.
Workloads: the structural argument (pseudomanifold + connectivity +
per-process propagation + solo collapse) on immediate-snapshot protocol
complexes, and the exhaustive comparison-based decision-map refutation,
for n = 2, 3 and 1-2 rounds; plus the one-round structure check at n = 4.
"""

from repro.core import election, renaming
from repro.topology import (
    ISProtocolComplex,
    election_impossibility,
    search_decision_map,
)


def bench_election_argument_n3_r2(benchmark):
    report = benchmark(election_impossibility, 3, 2)
    assert report.argument_applies
    assert report.election_impossible
    assert report.facets == 169


def bench_election_brute_force_n3(benchmark):
    complex_ = ISProtocolComplex(3, 2)

    def refute():
        return search_decision_map(election(3), complex_)

    result = benchmark(refute)
    assert not result.solvable


def bench_structure_lemmas_n4(benchmark):
    def structure():
        complex_ = ISProtocolComplex(4, 1)
        simplicial = complex_.to_simplicial()
        return (
            simplicial.is_pure(),
            simplicial.is_chromatic(ISProtocolComplex.color),
            simplicial.is_pseudomanifold(),
            simplicial.is_strongly_connected(),
        )

    flags = benchmark(structure)
    assert flags == (True, True, True, True)


def bench_positive_control_renaming_map_search(benchmark):
    # Solvable counterpoint: the search *finds* a map for <2,3,0,1> at one
    # round, so refutations above are not artifacts of a broken search.
    complex_ = ISProtocolComplex(2, 1)

    def find():
        return search_decision_map(renaming(2, 3), complex_)

    result = benchmark(find)
    assert result.solvable
