"""The named GSB task instances of Section 3.2.

Each constructor returns the task with its standard label so reports and
reductions can refer to tasks by name.  The module also records, for each
named task, its place in the difficulty spectrum established in Section 5:

* trivially solvable without communication: ``(2n-1)``-renaming,
  x-bounded homonymous renaming;
* wait-free solvable for some n only: WSB, ``(2n-2)``-renaming;
* never wait-free solvable: election, perfect renaming.
"""

from __future__ import annotations

import math

from .bounds import BoundVector, GSBSpecificationError
from .gsb import GSBTask, SymmetricGSBTask


def election(n: int) -> GSBTask:
    """Election: exactly one process outputs 1, exactly n-1 output 2.

    This is the asymmetric GSB task with bounds l = u = [1, n-1]; it is a
    non-adaptive form of test-and-set (Section 1) and is not wait-free
    solvable (Theorem 11).
    """
    if n < 2:
        raise GSBSpecificationError("election needs at least 2 processes")
    bounds = BoundVector(lower=(1, n - 1), upper=(1, n - 1))
    return GSBTask(n, bounds, label="election")


def weak_symmetry_breaking(n: int) -> SymmetricGSBTask:
    """WSB: binary outputs, not all processes decide the same value.

    The ``<n, 2, 1, n-1>`` task (Section 3.2); equal to 1-WSB and to the
    2-slot task, and wait-free equivalent to (2n-2)-renaming (Section 5.3).
    """
    if n < 2:
        raise GSBSpecificationError("WSB needs at least 2 processes")
    return SymmetricGSBTask(n, 2, 1, n - 1, label="WSB")


def k_weak_symmetry_breaking(n: int, k: int) -> SymmetricGSBTask:
    """k-WSB: each binary value decided at least k and at most n-k times.

    Defined for ``k <= n/2`` (Section 3.2); 1-WSB is plain WSB.
    """
    if not 1 <= k <= n // 2:
        raise GSBSpecificationError(
            f"k-WSB needs 1 <= k <= n/2, got k={k} with n={n}"
        )
    return SymmetricGSBTask(n, 2, k, n - k, label=f"{k}-WSB")


def renaming(n: int, m: int) -> SymmetricGSBTask:
    """Non-adaptive m-renaming: distinct new names in ``[1..m]``.

    The ``<n, m, 0, 1>`` task.  ``m = 2n-1`` is trivially solvable
    (processes output their own identity), ``m = 2n-2`` is solvable exactly
    when gcd{C(n,i)} = 1, and ``m = n`` is perfect renaming.
    """
    if m < n:
        raise GSBSpecificationError(
            f"{m}-renaming with {n} processes is infeasible (m < n)"
        )
    return SymmetricGSBTask(n, m, 0, 1, label=f"{m}-renaming")


def perfect_renaming(n: int) -> SymmetricGSBTask:
    """Perfect renaming ``<n, n, 1, 1>``: a bijection onto ``[1..n]``.

    Universal for the whole GSB family (Theorem 8) and not wait-free
    solvable (Corollary 5).
    """
    return SymmetricGSBTask(n, n, 1, 1, label="perfect-renaming")


def k_slot(n: int, k: int) -> SymmetricGSBTask:
    """k-slot: decide values in ``[1..k]``, every value decided at least once.

    The ``<n, k, 1, n>`` task, synonym of ``<n, k, 1, n-k+1>``
    (Section 3.2).  The 2-slot task is WSB; the (n-1)-slot task solves
    (n+1)-renaming via the paper's Figure 2 algorithm.
    """
    if not 1 <= k <= n:
        raise GSBSpecificationError(f"k-slot needs 1 <= k <= n, got k={k}, n={n}")
    return SymmetricGSBTask(n, k, 1, n, label=f"{k}-slot")


def x_bounded_homonymous_renaming(n: int, x: int) -> SymmetricGSBTask:
    """x-bounded homonymous renaming: ``<n, ceil((2n-1)/x), 0, x>``.

    At most x processes may share a name; solvable with no communication by
    ``decide ceil(id/x)`` (Corollary 2).
    """
    if x < 1:
        raise GSBSpecificationError(f"x must be at least 1, got {x}")
    m = math.ceil((2 * n - 1) / x)
    return SymmetricGSBTask(n, m, 0, x, label=f"{x}-bounded-homonymous-renaming")


def hardest_task(n: int, m: int) -> SymmetricGSBTask:
    """The hardest feasible ``<n, m, -, ->`` task (Theorem 5).

    ``<n, m, floor(n/m), ceil(n/m)>``: its kernel set is the single
    balanced kernel vector contained in every feasible sibling task.
    """
    if m < 1 or m > n:
        raise GSBSpecificationError(
            f"hardest task needs 1 <= m <= n, got m={m}, n={n}"
        )
    return SymmetricGSBTask(
        n, m, n // m, math.ceil(n / m), label=f"hardest<{n},{m}>"
    )


def exact_split(n: int, k: int) -> GSBTask:
    """Exactly k processes decide 1 and n-k decide 2 (election is k=1).

    The natural asymmetric ladder between election and balanced splitting;
    not named in the paper but definable in its framework.  Its outputs
    sit inside k-WSB's (for k <= n/2), and Theorem 8 solves it from
    perfect renaming like every other GSB task.
    """
    if not 1 <= k <= n - 1:
        raise GSBSpecificationError(
            f"exact split needs 1 <= k <= n-1, got k={k}, n={n}"
        )
    bounds = BoundVector(lower=(k, n - k), upper=(k, n - k))
    return GSBTask(n, bounds, label=f"exact-{k}-split")


def committee_decision(
    n: int, committee_sizes: list[tuple[int, int]]
) -> GSBTask:
    """The introduction's committee example as an asymmetric GSB task.

    ``committee_sizes[v-1] = (min_members, max_members)`` of committee v;
    every person (process) joins exactly one committee.
    """
    bounds = BoundVector.from_pairs(committee_sizes)
    return GSBTask(n, bounds, label="committee-assignment")


#: Constructors for all named symmetric families keyed by their paper name,
#: used by the atlas generator.  Values are (constructor, arity) pairs where
#: arity counts parameters beyond n.
NAMED_FAMILIES = {
    "WSB": (weak_symmetry_breaking, 0),
    "k-WSB": (k_weak_symmetry_breaking, 1),
    "renaming": (renaming, 1),
    "perfect-renaming": (perfect_renaming, 0),
    "k-slot": (k_slot, 1),
    "x-bounded-homonymous-renaming": (x_bounded_homonymous_renaming, 1),
}
