"""Tests for distributed coloring algorithms."""

import networkx as nx
import pytest

from repro.graphs import (
    check_coloring,
    cole_vishkin_iterations,
    random_graph,
    run_cole_vishkin,
    run_randomized_coloring,
)


class TestRandomizedColoring:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        graph = random_graph(35, 0.12, seed=seed)
        result = run_randomized_coloring(graph, seed=seed)
        assert result.halted
        assert check_coloring(graph, result.outputs) == []

    def test_palette_bounded_by_degree_plus_one(self):
        graph = random_graph(30, 0.15, seed=2)
        result = run_randomized_coloring(graph, seed=2)
        for node, color in result.outputs.items():
            assert 1 <= color <= graph.degree[node] + 1

    def test_complete_graph_uses_all_colors(self):
        graph = nx.complete_graph(6)
        result = run_randomized_coloring(graph, seed=3)
        assert sorted(result.outputs.values()) == [1, 2, 3, 4, 5, 6]

    def test_deterministic_given_seed(self):
        graph = random_graph(25, 0.2, seed=4)
        assert (
            run_randomized_coloring(graph, seed=5).outputs
            == run_randomized_coloring(graph, seed=5).outputs
        )


class TestColeVishkin:
    @pytest.mark.parametrize("n", [3, 5, 8, 16, 64, 200])
    def test_three_colors_on_rings(self, n):
        result = run_cole_vishkin(n)
        assert result.halted
        assert set(result.outputs.values()) <= {0, 1, 2}
        assert check_coloring(nx.cycle_graph(n), result.outputs) == []

    def test_shuffled_identities(self):
        for seed in range(5):
            result = run_cole_vishkin(32, seed=seed)
            assert check_coloring(nx.cycle_graph(32), result.outputs) == []

    def test_log_star_round_schedule(self):
        # Iterations grow like log*: single digits even for huge palettes.
        assert cole_vishkin_iterations(2**16) <= 6
        assert cole_vishkin_iterations(2**64 - 1) <= 7
        assert cole_vishkin_iterations(10) >= 1

    def test_round_count_is_schedule_plus_reduction(self):
        n = 64
        result = run_cole_vishkin(n)
        expected = cole_vishkin_iterations(n) + 5  # 5 shift-down rounds (7..3)
        assert result.rounds == expected

    def test_small_ring_rejected(self):
        with pytest.raises(ValueError):
            run_cole_vishkin(2)


class TestChecker:
    def test_flags_monochromatic_edge(self):
        graph = nx.path_graph(3)
        problems = check_coloring(graph, {0: 1, 1: 1, 2: 2})
        assert any("monochromatic" in problem for problem in problems)

    def test_flags_uncolored(self):
        graph = nx.path_graph(3)
        problems = check_coloring(graph, {0: 1, 1: 2})
        assert any("uncolored" in problem for problem in problems)
