"""Experiment E-MIS: message-passing symmetry breaking round complexity.

Companion substrate: Luby's MIS should finish in O(log n) rounds on random
graphs, the randomized colorer likewise, Cole-Vishkin in O(log* n) + O(1)
rounds on rings, and ring election in O(n) rounds.  The benches measure
rounds/messages and assert the growth shapes.
"""

import math

from repro.graphs import (
    check_coloring,
    check_election_outputs,
    check_mis,
    mis_nodes,
    random_graph,
    run_chang_roberts,
    run_cole_vishkin,
    run_hirschberg_sinclair,
    run_luby_mis,
    run_randomized_coloring,
)


def bench_luby_mis_round_scaling(benchmark):
    sizes = (32, 128, 512)

    def sweep():
        rounds = {}
        for n in sizes:
            graph = random_graph(n, min(8 / n, 0.5), seed=5)
            result = run_luby_mis(graph, seed=5)
            assert result.halted
            assert check_mis(graph, mis_nodes(result)) == []
            rounds[n] = result.rounds
        return rounds

    rounds = benchmark(sweep)
    # O(log n) shape: 16x more nodes should cost far less than 16x rounds.
    assert rounds[512] <= 4 * rounds[32]
    assert rounds[512] <= 10 * math.log2(512)


def bench_randomized_coloring_rounds(benchmark):
    def sweep():
        rounds = {}
        for n in (32, 128, 512):
            graph = random_graph(n, min(6 / n, 0.5), seed=9)
            result = run_randomized_coloring(graph, seed=9)
            assert result.halted
            assert check_coloring(graph, result.outputs) == []
            rounds[n] = result.rounds
        return rounds

    rounds = benchmark(sweep)
    assert rounds[512] <= 4 * rounds[32] + 4


def bench_cole_vishkin_log_star(benchmark):
    def sweep():
        rounds = {}
        for n in (16, 256, 1024):
            result = run_cole_vishkin(n)
            assert result.halted
            rounds[n] = result.rounds
        return rounds

    rounds = benchmark(sweep)
    # log* growth: nearly flat.
    assert rounds[1024] - rounds[16] <= 3


def bench_ring_election_messages(benchmark):
    def sweep():
        messages = {}
        for n in (16, 64):
            cr = run_chang_roberts(n, seed=3)
            hs = run_hirschberg_sinclair(n, seed=3)
            assert check_election_outputs(cr) == []
            assert check_election_outputs(hs) == []
            messages[n] = (cr.messages, hs.messages)
        return messages

    messages = benchmark(sweep)
    # HS stays O(n log n): its 64-ring run must cost far less than n^2.
    assert messages[64][1] < 64 * 64
