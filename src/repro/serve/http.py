"""Stdlib asyncio HTTP/1.1 front end for :class:`UniverseService`.

No third-party web framework: the serving contract is small (GET/POST,
JSON bodies, ETag revalidation, keep-alive) and the repo's no-new-deps
rule is hard, so this module speaks just enough HTTP/1.1 itself.  The
parser is deliberately strict — malformed request lines get a ``400``
and the connection is closed; request bodies are capped so a client
cannot balloon memory.

Two entry points:

* :func:`serve_forever` — the blocking CLI path
  (``python -m repro serve``): one event loop, one service, runs until
  interrupted.
* :class:`BackgroundServer` — a context manager running the same server
  on a daemon thread with an ephemeral port, used by the serve tests,
  ``bench_serve.py`` and the CI smoke to drive real sockets without
  managing a subprocess.
"""

from __future__ import annotations

import asyncio
import json
import threading
from urllib.parse import parse_qsl, urlsplit

from .metrics import ServiceMetrics
from .service import Response, UniverseService

#: Largest accepted request body (the batch endpoint is the only reader).
MAX_BODY_BYTES = 4 << 20

#: Reason phrases for the statuses the service actually emits.
_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def _serialize(response: Response, keep_alive: bool) -> bytes:
    body = response.body_bytes()
    reason = _REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}"]
    if response.status != 304:
        head.append("Content-Type: application/json; charset=utf-8")
    head.append(f"Content-Length: {len(body)}")
    if response.etag is not None:
        head.append(f"ETag: {response.etag}")
    head.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """One parsed request off the wire, or None at clean connection end."""
    request_line = await reader.readline()
    if not request_line.strip():
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line {request_line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ValueError(f"request body of {length} bytes exceeds cap")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


async def _serve_connection(
    service: UniverseService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            try:
                request = await _read_request(reader)
            except (ValueError, asyncio.IncompleteReadError) as error:
                writer.write(
                    _serialize(
                        Response(400, {"error": f"bad request: {error}"}),
                        keep_alive=False,
                    )
                )
                await writer.drain()
                break
            if request is None:
                break
            method, target, headers, body = request
            parsed = urlsplit(target)
            query = dict(parse_qsl(parsed.query))
            try:
                response = service.handle(
                    method.upper(),
                    parsed.path,
                    query,
                    body,
                    headers.get("if-none-match"),
                )
            except Exception as error:  # noqa: BLE001 - the server must not die
                response = Response(
                    500, {"error": f"internal error: {type(error).__name__}"}
                )
            keep_alive = (
                headers.get("connection", "keep-alive").lower() != "close"
            )
            writer.write(_serialize(response, keep_alive=keep_alive))
            await writer.drain()
            if not keep_alive:
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # client already gone


async def _start(
    service: UniverseService, host: str, port: int
) -> asyncio.AbstractServer:
    return await asyncio.start_server(
        lambda reader, writer: _serve_connection(service, reader, writer),
        host,
        port,
    )


def serve_forever(
    root,
    backend: str = "auto",
    host: str = "127.0.0.1",
    port: int = 8707,
    metrics: ServiceMetrics | None = None,
) -> None:
    """Run the HTTP service until interrupted (the CLI entry point)."""
    service = UniverseService.open(root, backend=backend, metrics=metrics)

    async def main() -> None:
        server = await _start(service, host, port)
        addresses = ", ".join(
            f"http://{sock.getsockname()[0]}:{sock.getsockname()[1]}"
            for sock in server.sockets
        )
        print(
            f"serving universe store {service.store.root} "
            f"[{service.store.active_backend} backend] on {addresses}",
            flush=True,
        )
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass


class BackgroundServer:
    """The same server on a daemon thread + ephemeral port (tests/bench).

    ::

        with BackgroundServer(store_root, backend="binary") as server:
            http.client.HTTPConnection(server.host, server.port)

    The event loop lives on the background thread; entering the context
    blocks until the socket is listening, exiting cancels the loop and
    joins the thread, so tests cannot leak servers.
    """

    def __init__(
        self,
        root,
        backend: str = "auto",
        host: str = "127.0.0.1",
        service: UniverseService | None = None,
    ) -> None:
        self.service = service or UniverseService.open(root, backend=backend)
        self._host_requested = host
        self.host: str = host
        self.port: int = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("background server did not start in 30s")
        if self._failure is not None:
            raise RuntimeError(
                f"background server failed to start: {self._failure}"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                _start(self.service, self._host_requested, 0)
            )
            sockname = server.sockets[0].getsockname()
            self.host, self.port = sockname[0], sockname[1]
            self._ready.set()
            loop.run_forever()
            server.close()
            loop.run_until_complete(server.wait_closed())
        except BaseException as error:  # noqa: BLE001 - report to the foreground
            self._failure = error
            self._ready.set()
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                loop.close()

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)

    # -- tiny built-in client (CI smoke convenience) --------------------

    def get(self, path: str, headers: dict[str, str] | None = None):
        """One blocking GET via http.client; returns (status, headers, json)."""
        import http.client

        connection = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            connection.request("GET", path, headers=headers or {})
            response = connection.getresponse()
            blob = response.read()
            payload = json.loads(blob) if blob else None
            return response.status, dict(response.getheaders()), payload
        finally:
            connection.close()

    def post(self, path: str, document) -> tuple[int, dict, object]:
        import http.client

        connection = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            body = json.dumps(document).encode("utf-8")
            connection.request(
                "POST",
                path,
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            blob = response.read()
            payload = json.loads(blob) if blob else None
            return response.status, dict(response.getheaders()), payload
        finally:
            connection.close()
