"""Experiment E-UNIV: Theorem 8's universality sweep.

Paper artifact: Theorem 8 — every GSB task is solvable from perfect
renaming.  Workload: the entire feasible <6, m, l, u> universe plus the
asymmetric tasks the paper names (election, the committee example), each
solved from a perfect-renaming oracle on the simulator under random
schedules.  Assertion: zero violations across the sweep.
"""

from repro.algorithms import (
    gsb_from_perfect_renaming,
    perfect_renaming_system_factory,
)
from repro.core import (
    SymmetricGSBTask,
    committee_decision,
    election,
    feasible_bound_pairs,
)
from repro.shm import check_algorithm


def bench_universality_symmetric_family(benchmark):
    n = 6

    def sweep():
        failures = []
        for m in range(1, n + 1):
            for low, high in feasible_bound_pairs(n, m):
                task = SymmetricGSBTask(n, m, low, high)
                report = check_algorithm(
                    task,
                    gsb_from_perfect_renaming(task),
                    n,
                    system_factory=perfect_renaming_system_factory(n, seed=m),
                    runs=4,
                    seed=low * 13 + high,
                )
                if not report.ok:
                    failures.append((task, report.violations[:1]))
        return failures

    failures = benchmark(sweep)
    assert failures == []


def bench_universality_asymmetric_tasks(benchmark):
    n = 6
    tasks = [
        election(n),
        committee_decision(n, [(1, 2), (2, 3), (1, 4)]),
        committee_decision(n, [(0, 1), (1, 1), (2, 6)]),
    ]

    def sweep():
        failures = []
        for index, task in enumerate(tasks):
            report = check_algorithm(
                task,
                gsb_from_perfect_renaming(task),
                n,
                system_factory=perfect_renaming_system_factory(n, seed=index),
                runs=20,
                seed=index,
            )
            if not report.ok:
                failures.append((task, report.violations[:1]))
        return failures

    failures = benchmark(sweep)
    assert failures == []


def bench_universality_output_map_only(benchmark):
    # The pure post-processing cost of Theorem 8 (no simulator): all n!
    # name permutations of the hardest <8,4> task.
    import itertools

    from repro.core import output_map

    task = SymmetricGSBTask(8, 4, 2, 2)
    decide = output_map(task)

    def fold_all_permutations():
        bad = 0
        for names in itertools.permutations(range(1, 9)):
            outputs = [decide(name) for name in names]
            if not task.is_legal_output(outputs):
                bad += 1
        return bad

    bad = benchmark(fold_all_permutations)
    assert bad == 0
