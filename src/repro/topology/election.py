"""Mechanized Theorem 11: election is not wait-free solvable.

The paper's proof has four computational ingredients, each checked here on
the actual r-round immediate-snapshot protocol complex:

1. **Structure** — the complex is pure, chromatic, a pseudomanifold, and
   strongly connected (the properties the proof imports from [10, 17, 35]).
2. **Forced agreement across ridges** — if a decision map solves election,
   the two same-process vertices on either side of an internal ridge must
   decide the same value (the ridge fixes n-1 decisions; "exactly one 1"
   forces the remaining one).
3. **Propagation** — each process's vertices are connected under the
   opposite-vertex relation, so its decision is constant across the whole
   complex.
4. **Contradiction** — the n solo vertices fall in one comparison-based
   canonical class, so all processes' constants are equal; then no facet
   can contain exactly one 1 (n >= 2), refuting the assumed map.

:func:`election_impossibility` runs all four steps and optionally confirms
with the exhaustive decision-map search of :mod:`repro.topology.decision`.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..core.named import election
from .decision import search_decision_map
from .is_complex import ISProtocolComplex
from .views import canonical_local_state


@dataclass
class ElectionImpossibilityReport:
    """Evidence gathered by the mechanized Theorem 11 argument."""

    n: int
    rounds: int
    facets: int
    is_pure: bool
    is_chromatic: bool
    is_pseudomanifold: bool
    is_strongly_connected: bool
    per_process_opposite_connected: dict[int, bool]
    solo_classes_collapse: bool
    brute_force_refuted: bool | None

    @property
    def argument_applies(self) -> bool:
        """All structural premises of the proof hold."""
        return (
            self.is_pure
            and self.is_chromatic
            and self.is_pseudomanifold
            and self.is_strongly_connected
            and all(self.per_process_opposite_connected.values())
            and self.solo_classes_collapse
        )

    @property
    def election_impossible(self) -> bool:
        """The proof's conclusion for r-round comparison-based protocols."""
        if self.n < 2:
            return False
        if self.brute_force_refuted is not None:
            return self.argument_applies and self.brute_force_refuted
        return self.argument_applies

    def summary(self) -> str:
        lines = [
            f"election impossibility, n={self.n}, rounds={self.rounds} "
            f"({self.facets} facets)",
            f"  pure complex:            {self.is_pure}",
            f"  chromatic:               {self.is_chromatic}",
            f"  pseudomanifold:          {self.is_pseudomanifold}",
            f"  strongly connected:      {self.is_strongly_connected}",
            f"  per-process propagation: "
            f"{all(self.per_process_opposite_connected.values())}",
            f"  solo classes collapse:   {self.solo_classes_collapse}",
        ]
        if self.brute_force_refuted is not None:
            lines.append(
                f"  exhaustive map search:   "
                f"{'no map exists' if self.brute_force_refuted else 'MAP FOUND'}"
            )
        lines.append(f"  => impossible at {self.rounds} round(s): "
                     f"{self.election_impossible}")
        return "\n".join(lines)


def election_impossibility(
    n: int, rounds: int = 1, brute_force: bool | None = None
) -> ElectionImpossibilityReport:
    """Run the mechanized Theorem 11 argument on the r-round IS complex.

    ``brute_force`` additionally runs (or skips) the exhaustive
    decision-map search; by default it runs when the complex is small
    (n <= 3 and at most ~2,500 facets).
    """
    complex_ = ISProtocolComplex(n, rounds)
    simplicial = complex_.to_simplicial()

    is_pure = simplicial.is_pure()
    is_chromatic = simplicial.is_chromatic(ISProtocolComplex.color)
    is_pseudomanifold = simplicial.is_pseudomanifold()
    is_connected = simplicial.is_strongly_connected()

    opposite = simplicial.opposite_vertex_graph(ISProtocolComplex.color)
    per_process: dict[int, bool] = {}
    for pid in range(n):
        nodes = [vertex for vertex in opposite.nodes if vertex[0] == pid]
        subgraph = opposite.subgraph(nodes)
        per_process[pid] = nx.is_connected(subgraph) if nodes else False

    solo = complex_.solo_vertices()
    solo_classes = {canonical_local_state(pid, view) for pid, view in solo}
    solo_collapse = len(solo) == n and len(solo_classes) == 1

    refuted: bool | None = None
    run_brute = (
        brute_force
        if brute_force is not None
        else (n <= 3 and complex_.facet_count() <= 2500)
    )
    if run_brute and n >= 2:
        result = search_decision_map(election(n), complex_)
        refuted = not result.solvable

    return ElectionImpossibilityReport(
        n=n,
        rounds=rounds,
        facets=complex_.facet_count(),
        is_pure=is_pure,
        is_chromatic=is_chromatic,
        is_pseudomanifold=is_pseudomanifold,
        is_strongly_connected=is_connected,
        per_process_opposite_connected=per_process,
        solo_classes_collapse=solo_collapse,
        brute_force_refuted=refuted,
    )


def forced_ridge_agreement(n: int, rounds: int = 1) -> bool:
    """Check step 2 of the proof syntactically on the complex.

    For every internal ridge, the two opposite vertices have the same
    color — so under any election-solving map their decisions are both
    determined by the same n-1 ridge decisions, hence equal.  The check
    verifies the same-color property (the rest is arithmetic on counts).
    """
    complex_ = ISProtocolComplex(n, rounds)
    simplicial = complex_.to_simplicial()
    for ridge, facets in simplicial.ridges().items():
        if len(facets) != 2:
            continue
        (first,) = facets[0] - ridge
        (second,) = facets[1] - ridge
        if first[0] != second[0]:
            return False
    return True
