"""Memoized family store: compute each ``<n, m, -, ->`` family once.

Every structural artifact — the atlas, Table 1, Figure 1, the census, the
benchmarks — walks whole families of symmetric GSB tasks.  Before this
module each walk re-derived everything (``analysis/atlas.py`` rebuilt and
linearly scanned the family to find a single row); the store computes a
family's annotated entries exactly once per process and hands out O(1)
views from then on:

* :meth:`FamilyStore.entries` — the annotated rows, in Table 1 order;
* :meth:`FamilyStore.entry` — dict-indexed ``(l, u)`` lookup (``KeyError``
  for infeasible parameters, matching the old linear-scan contract);
* :meth:`FamilyStore.statistics` / :meth:`FamilyStore.kernel_columns` /
  :meth:`FamilyStore.canonical_entries` — the derived summaries.

Entries share the kernel lattice of :func:`repro.core.kernel.kernel_vectors`:
one master enumeration of the loosest ``<n, m, 0, n>`` set per family, with
every tighter kernel set a filter over it.  The module-level store returned
by :func:`get_store` is process-wide; worker processes of the parallel
census each prime their own copy.  Records are kept until
:func:`clear_family_store` — the working set of any realistic sweep (a few
thousand families) is far smaller than a single exploration transcript.
"""

from __future__ import annotations

from dataclasses import dataclass
from threading import Lock
from typing import Mapping

from .anchoring import anchoring_profile
from .canonical import canonical_parameters, is_canonical
from .family import FamilyEntry, table_order_key
from .feasibility import feasible_bound_pairs
from .gsb import SymmetricGSBTask
from .kernel import KernelVector, kernel_vectors
from .solvability import classify


@dataclass(frozen=True)
class FamilyRecord:
    """Everything the store knows about one ``<n, m, -, ->`` family."""

    n: int
    m: int
    entries: tuple[FamilyEntry, ...]
    index: Mapping[tuple[int, int], FamilyEntry]  # (low, high) -> entry
    kernel_columns: tuple[KernelVector, ...]

    @property
    def canonical_entries(self) -> tuple[FamilyEntry, ...]:
        return tuple(entry for entry in self.entries if entry.canonical)


def build_family_record(n: int, m: int) -> FamilyRecord:
    """Annotate every feasible ``<n, m, l, u>`` task (uncached builder)."""
    columns = kernel_vectors(n, m, 0, n)
    entries = []
    index: dict[tuple[int, int], FamilyEntry] = {}
    for low, high in feasible_bound_pairs(n, m):
        task = SymmetricGSBTask(n, m, low, high)
        solvability, reason = classify(task)
        entry = FamilyEntry(
            task=task,
            kernel_set=task.kernel_set,
            canonical=is_canonical(task),
            canonical_parameters=canonical_parameters(n, m, low, high),
            anchoring=anchoring_profile(task),
            solvability=solvability,
            solvability_reason=reason,
        )
        entries.append(entry)
        index[(low, high)] = entry
    entries.sort(key=table_order_key)
    return FamilyRecord(
        n=n, m=m, entries=tuple(entries), index=index, kernel_columns=columns
    )


class FamilyStore:
    """Process-wide memo of :class:`FamilyRecord` objects."""

    def __init__(self) -> None:
        self._records: dict[tuple[int, int], FamilyRecord] = {}
        self._lock = Lock()
        self._hits = 0
        self._misses = 0

    def family(self, n: int, m: int) -> FamilyRecord:
        """The family record, computed on first access."""
        key = (n, m)
        with self._lock:
            record = self._records.get(key)
            if record is not None:
                self._hits += 1
                return record
        # Build outside the lock: records are immutable and rebuilding the
        # same family twice under a race is harmless.
        record = build_family_record(n, m)
        with self._lock:
            self._misses += 1
            return self._records.setdefault(key, record)

    def entries(self, n: int, m: int) -> tuple[FamilyEntry, ...]:
        """Annotated family rows in Table 1 order."""
        return self.family(n, m).entries

    def entry(self, n: int, m: int, low: int, high: int) -> FamilyEntry:
        """O(1) lookup of one row; ``KeyError`` when infeasible."""
        try:
            return self.family(n, m).index[(low, high)]
        except KeyError:
            raise KeyError(
                f"<{n},{m},{low},{high}> is not a feasible task"
            ) from None

    def kernel_columns(self, n: int, m: int) -> tuple[KernelVector, ...]:
        """Kernel vectors of the loosest task (Table 1's columns)."""
        return self.family(n, m).kernel_columns

    def canonical_entries(self, n: int, m: int) -> tuple[FamilyEntry, ...]:
        """Only the canonical rows (Figure 1's nodes), in Table 1 order."""
        return self.family(n, m).canonical_entries

    def statistics(self, n: int, m: int) -> dict[str, int]:
        """Summary counts used by the atlas report (fresh dict per call)."""
        record = self.family(n, m)
        by_class: dict[str, int] = {}
        for entry in record.entries:
            name = entry.solvability.value
            by_class[name] = by_class.get(name, 0) + 1
        return {
            "feasible_parameterizations": len(record.entries),
            "synonym_classes": len(
                {entry.canonical_parameters for entry in record.entries}
            ),
            "kernel_columns": len(record.kernel_columns),
            **{
                f"solvability[{name}]": count
                for name, count in sorted(by_class.items())
            },
        }

    def prime(self, cells: list[tuple[int, int]]) -> None:
        """Eagerly compute a batch of families (cache priming for sweeps)."""
        for n, m in cells:
            self.family(n, m)

    def cache_info(self) -> dict[str, int]:
        """Hit/miss statistics, mirroring ``lru_cache``'s counters."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "families": len(self._records),
            }

    def clear(self) -> None:
        """Drop every cached family (mainly for benchmarks and tests)."""
        with self._lock:
            self._records.clear()
            self._hits = 0
            self._misses = 0


_GLOBAL_STORE = FamilyStore()


def get_store() -> FamilyStore:
    """The process-wide family store every sweep shares."""
    return _GLOBAL_STORE


def clear_family_store() -> None:
    """Reset the process-wide store (benchmarks and tests)."""
    _GLOBAL_STORE.clear()
