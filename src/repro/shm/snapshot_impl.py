"""Wait-free atomic snapshot from 1WnR registers (Afek et al. [1]).

The paper assumes snapshot-returning reads *without loss of generality*
because atomic snapshots are wait-free implementable from single-writer
registers.  This module discharges that assumption: it implements the
classic unbounded-sequence-number snapshot (double collect + embedded-scan
helping) on top of plain :class:`repro.shm.ops.Read` and ``Write`` steps,
so every register access is one scheduler step and the adversary can
interleave at full granularity.

Algorithm recap: an *update* performs an embedded scan and writes
``(value, seq, embedded_view)`` to its own cell.  A *scan* repeatedly
double-collects; if two consecutive collects show no sequence number
change, the collect is a valid snapshot; otherwise any process observed to
move **twice** has performed a complete update inside the scan's interval,
and its embedded view is a valid snapshot to borrow.

Use :class:`RegisterSnapshot` inside an algorithm::

    snap = RegisterSnapshot(ctx, "S")
    yield from snap.update(my_value)
    view = yield from snap.scan()      # tuple of n values

The test suite checks linearizability evidence on the scans of whole runs:
scans are totally ordered by containment (via sequence vectors) and each
scan is consistent with a memory state that existed during its interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from .ops import Op, Read, Write
from .runtime import ProcessContext


@dataclass(frozen=True)
class SnapCell:
    """One register cell of the snapshot object.

    ``view`` is the embedded scan taken by the writer just before this
    write (the helping mechanism); ``None`` only in the initial state.
    """

    value: Any
    seq: int
    view: tuple[Any, ...] | None


#: Initial cell content of a snapshot array.
EMPTY_CELL = SnapCell(value=None, seq=0, view=None)


def snapshot_array_initial(n: int) -> list[SnapCell]:
    """Initial contents for a shared array used by :class:`RegisterSnapshot`."""
    return [EMPTY_CELL] * n


class RegisterSnapshot:
    """Per-process handle on a register-implemented snapshot object.

    Args:
        ctx: the owning process's context.
        array: name of a shared array initialized with
            :func:`snapshot_array_initial`.
    """

    def __init__(self, ctx: ProcessContext, array: str):
        self._ctx = ctx
        self._array = array
        self._seq = 0

    def update(self, value: Any) -> Generator[Op, Any, None]:
        """Write ``value`` with an embedded scan (one linearizable update)."""
        view = yield from self.scan()
        self._seq += 1
        yield Write(self._array, SnapCell(value=value, seq=self._seq, view=view))

    def scan(self) -> Generator[Op, Any, tuple[Any, ...]]:
        """Obtain an atomic snapshot of all n current values."""
        moved: set[int] = set()
        previous = yield from self._collect()
        while True:
            current = yield from self._collect()
            if all(
                prev_cell.seq == cur_cell.seq
                for prev_cell, cur_cell in zip(previous, current)
            ):
                return tuple(cell.value for cell in current)
            for pid, (prev_cell, cur_cell) in enumerate(zip(previous, current)):
                if prev_cell.seq == cur_cell.seq:
                    continue
                if pid in moved:
                    # pid completed a whole update inside our scan; its
                    # embedded view is linearizable within our interval.
                    assert cur_cell.view is not None
                    return cur_cell.view
                moved.add(pid)
            previous = current

    def _collect(self) -> Generator[Op, Any, list[SnapCell]]:
        """Read all n cells one register step at a time (not atomic)."""
        cells: list[SnapCell] = []
        for index in range(self._ctx.n):
            cell = yield Read(self._array, index)
            cells.append(cell)
        return cells
