"""Unit tests for counting vectors and kernel vectors (Section 4.1)."""

import itertools
import math
import random
import time

import pytest

from repro.core import (
    SymmetricGSBTask,
    balanced_kernel_vector,
    count_asymmetric_counting_vectors,
    count_kernel_vectors,
    counting_vector,
    is_gsb_kernel_set,
    is_kernel_vector,
    kernel_of_counting,
    kernel_vectors,
)
from repro.core.kernel import (
    count_output_vectors,
    counting_vectors,
    kernel_set_is_lexicographically_sorted,
)


def _seed_descending_compositions(remaining, slots, low, high, cap=None):
    """The seed repo's recursive enumeration, kept as the reference oracle."""
    if cap is None:
        cap = high
    if slots == 0:
        if remaining == 0:
            yield ()
        return
    top = min(cap, high, remaining - low * (slots - 1))
    bottom = max(low, math.ceil(remaining / slots))
    for first in range(top, bottom - 1, -1):
        for rest in _seed_descending_compositions(
            remaining - first, slots - 1, low, high, cap=first
        ):
            yield (first, *rest)


def _seed_kernel_vectors(n, m, low, high):
    low, high = max(low, 0), min(high, n)
    return tuple(
        sorted(_seed_descending_compositions(n, m, low, high), reverse=True)
    )


class TestCountingVector:
    def test_basic_counts(self):
        assert counting_vector([1, 2, 2, 3], 3) == (1, 2, 1)

    def test_missing_values_count_zero(self):
        assert counting_vector([1, 1], 3) == (2, 0, 0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            counting_vector([0], 2)
        with pytest.raises(ValueError, match="outside"):
            counting_vector([3], 2)

    def test_kernel_of_counting_sorts_descending(self):
        assert kernel_of_counting((1, 3, 2)) == (3, 2, 1)


class TestKernelVectors:
    def test_paper_columns_for_6_3(self):
        # Table 1's seven columns, in descending lexicographic order.
        assert kernel_vectors(6, 3, 0, 6) == (
            (6, 0, 0), (5, 1, 0), (4, 2, 0), (4, 1, 1),
            (3, 3, 0), (3, 2, 1), (2, 2, 2),
        )

    def test_paper_kernel_set_of_1_6(self):
        assert kernel_vectors(6, 3, 1, 6) == ((4, 1, 1), (3, 2, 1), (2, 2, 2))

    def test_paper_kernel_set_of_0_4(self):
        assert kernel_vectors(6, 3, 0, 4) == (
            (4, 2, 0), (4, 1, 1), (3, 3, 0), (3, 2, 1), (2, 2, 2),
        )

    def test_infeasible_gives_empty(self):
        assert kernel_vectors(6, 3, 3, 3) == ()  # 3*3 = 9 > 6
        assert kernel_vectors(6, 3, 0, 1) == ()  # 3*1 = 3 < 6

    def test_entries_within_bounds(self):
        for kernel in kernel_vectors(10, 4, 1, 5):
            assert all(1 <= entry <= 5 for entry in kernel)
            assert sum(kernel) == 10

    def test_all_weakly_decreasing(self):
        for kernel in kernel_vectors(9, 4, 0, 9):
            assert is_kernel_vector(kernel)

    def test_lexicographic_total_order_lemma_3(self):
        for n, m in [(6, 3), (8, 4), (5, 5), (7, 2)]:
            assert kernel_set_is_lexicographically_sorted(
                kernel_vectors(n, m, 0, n)
            )

    def test_matches_brute_force_enumeration(self):
        n, m, low, high = 6, 3, 1, 4
        brute = {
            tuple(sorted(combo, reverse=True))
            for combo in itertools.product(range(low, high + 1), repeat=m)
            if sum(combo) == n
        }
        assert set(kernel_vectors(n, m, low, high)) == brute

    def test_rejects_bad_n_m(self):
        with pytest.raises(ValueError):
            kernel_vectors(-1, 3, 0, 1)
        with pytest.raises(ValueError):
            kernel_vectors(3, 0, 0, 1)


class TestKernelLatticeSharing:
    """The master-filter implementation must match the seed byte for byte."""

    def test_byte_identical_to_seed_for_all_small_grids(self):
        for n in range(0, 13):
            for m in range(1, n + 2):
                for low in range(0, n + 2):
                    for high in range(low, n + 2):
                        assert kernel_vectors(n, m, low, high) == (
                            _seed_kernel_vectors(n, m, low, high)
                        ), (n, m, low, high)

    def test_every_tight_set_filters_the_master(self):
        master = set(kernel_vectors(9, 4, 0, 9))
        for low in range(0, 4):
            for high in range(low, 10):
                assert set(kernel_vectors(9, 4, low, high)) <= master

    def test_filter_path_matches_direct_path(self):
        from repro.core.kernel import _KERNEL_SET_CACHE

        for low, high in [(1, 5), (2, 4), (0, 3)]:
            _KERNEL_SET_CACHE.pop((11, 4, low, high), None)
            _KERNEL_SET_CACHE.pop((11, 4, 0, 11), None)
            direct = kernel_vectors(11, 4, low, high)
            _KERNEL_SET_CACHE.pop((11, 4, low, high), None)
            kernel_vectors(11, 4, 0, 11)  # cache the master
            assert kernel_vectors(11, 4, low, high) == direct

    def test_tight_query_never_builds_a_huge_master(self):
        # <200,10,19,21> has 6 vectors; its master has ~1.2e9.  The tight
        # query must use the pruned generator, not the master filter.
        started = time.perf_counter()
        kernels = kernel_vectors(200, 10, 19, 21)
        assert time.perf_counter() - started < 5.0
        assert len(kernels) == count_kernel_vectors(200, 10, 19, 21) == 6

    def test_large_single_family_is_fast(self):
        # The acceptance workload: <60,8,1,30> must complete well under a
        # second (the generous bound absorbs slow CI machines).
        started = time.perf_counter()
        kernels = kernel_vectors(60, 8, 1, 30)
        elapsed = time.perf_counter() - started
        assert len(kernels) == count_kernel_vectors(60, 8, 1, 30)
        assert elapsed < 5.0


class TestCountKernelVectors:
    def test_matches_enumeration_on_randomized_grid(self):
        rng = random.Random(20260727)
        for _ in range(300):
            n = rng.randint(0, 24)
            m = rng.randint(1, 8)
            low = rng.randint(0, 5)
            high = rng.randint(low, max(low, n + 2))
            assert count_kernel_vectors(n, m, low, high) == len(
                kernel_vectors(n, m, low, high)
            ), (n, m, low, high)

    def test_counts_without_materializing_at_scale(self):
        # Far past any size the enumerator could touch: partitions of 400
        # into at most 12 parts, counted exactly.
        assert count_kernel_vectors(400, 12, 0, 400) > 10**12

    def test_infeasible_counts_zero(self):
        assert count_kernel_vectors(6, 3, 3, 3) == 0
        assert count_kernel_vectors(6, 3, 0, 1) == 0

    def test_cross_check_against_output_vector_totals(self):
        # Summing multinomials over the kernel set must equal the task's
        # own DP-free output-vector count, and m**n for the loosest task.
        for n, m, low, high in [(6, 3, 0, 6), (6, 3, 1, 4), (7, 2, 1, 6)]:
            task = SymmetricGSBTask(n, m, low, high)
            by_kernels = sum(
                count_output_vectors(kernel, n)
                for kernel in kernel_vectors(n, m, low, high)
            )
            assert by_kernels == task.count_output_vectors()
        assert sum(
            count_output_vectors(kernel, 5)
            for kernel in kernel_vectors(5, 3, 0, 5)
        ) == 3**5

    def test_rejects_bad_n_m(self):
        with pytest.raises(ValueError):
            count_kernel_vectors(-1, 3, 0, 1)
        with pytest.raises(ValueError):
            count_kernel_vectors(3, 0, 0, 1)


class TestCountAsymmetricCountingVectors:
    def test_matches_enumeration(self):
        rng = random.Random(7)
        for _ in range(100):
            n = rng.randint(0, 10)
            m = rng.randint(1, 4)
            lower = tuple(rng.randint(0, 3) for _ in range(m))
            upper = tuple(
                low + rng.randint(0, 5) for low in lower
            )
            task = count_asymmetric_counting_vectors(n, lower, upper)
            brute = sum(
                1
                for combo in itertools.product(range(n + 1), repeat=m)
                if sum(combo) == n
                and all(
                    lo <= c <= min(up, n)
                    for c, lo, up in zip(combo, lower, upper)
                )
            )
            assert task == brute, (n, lower, upper)

    def test_symmetric_case_agrees_with_counting_vectors(self):
        total = count_asymmetric_counting_vectors(6, (1,) * 3, (4,) * 3)
        assert total == sum(1 for _ in counting_vectors(6, 3, 1, 4))


class TestCountingVectors:
    def test_orbit_of_kernel_set(self):
        countings = set(counting_vectors(6, 3, 1, 4))
        kernels = set(kernel_vectors(6, 3, 1, 4))
        assert {kernel_of_counting(c) for c in countings} == kernels

    def test_count_matches_multinomial(self):
        # Output-vector count via kernels equals direct enumeration.
        task = SymmetricGSBTask(5, 3, 0, 2)
        direct = sum(1 for _ in task.output_vectors())
        assert task.count_output_vectors() == direct

    def test_count_output_vectors_per_kernel(self):
        # For kernel (2,1,0) with n=3: 3 value arrangements * 3 process splits.
        assert count_output_vectors((2, 1, 0), 3) == 6 * 3

    def test_count_output_vectors_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="does not sum"):
            count_output_vectors((2, 2), 3)


class TestBalancedKernel:
    def test_divisible(self):
        assert balanced_kernel_vector(6, 3) == (2, 2, 2)

    def test_non_divisible(self):
        assert balanced_kernel_vector(7, 3) == (3, 2, 2)
        assert balanced_kernel_vector(10, 4) == (3, 3, 2, 2)

    def test_in_every_feasible_task(self):
        # The paper: the balanced kernel vector belongs to all tasks.
        for low in range(0, 3):
            for high in range(2, 7):
                kernels = kernel_vectors(6, 3, low, high)
                if kernels:
                    assert (2, 2, 2) in kernels

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            balanced_kernel_vector(5, 0)


class TestKernelSetRealizability:
    def test_paper_counterexample(self):
        # Section 4.1 remark: {[5,1,0],[4,2,1]} does not define a task.
        assert not is_gsb_kernel_set([(5, 1, 0), (4, 2, 1)], 6, 3)

    def test_real_kernel_sets_are_realizable(self):
        for low in range(0, 3):
            for high in range(low, 7):
                kernels = kernel_vectors(6, 3, low, high)
                if kernels:
                    assert is_gsb_kernel_set(kernels, 6, 3)

    def test_rejects_wrong_dimension(self):
        assert not is_gsb_kernel_set([(6, 0)], 6, 3)

    def test_rejects_wrong_sum(self):
        assert not is_gsb_kernel_set([(3, 2, 0)], 6, 3)

    def test_rejects_unsorted(self):
        assert not is_gsb_kernel_set([(0, 6, 0)], 6, 3)

    def test_rejects_empty(self):
        assert not is_gsb_kernel_set([], 6, 3)

    def test_single_balanced_vector_is_a_task(self):
        assert is_gsb_kernel_set([(2, 2, 2)], 6, 3)


def test_is_kernel_vector_edge_cases():
    assert is_kernel_vector(())
    assert is_kernel_vector((5,))
    assert is_kernel_vector((3, 3, 3))
    assert not is_kernel_vector((1, 2))
    assert not is_kernel_vector((2, -1))


def test_count_output_vectors_total_equals_m_power_n_for_loosest_task():
    # <n, m, 0, n> admits every output vector: m ** n of them.
    task = SymmetricGSBTask(4, 3, 0, 4)
    assert task.count_output_vectors() == 3 ** 4
    total = sum(
        count_output_vectors(kernel, 4) for kernel in kernel_vectors(4, 3, 0, 4)
    )
    assert total == 3 ** 4
