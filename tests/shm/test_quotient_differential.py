"""Differential + property suite for the value-symmetry orbit quotient.

The quotient (:meth:`PrefixSharingEngine.decided_vectors` with
``quotient=True``) memoizes over orbit keys — decided outputs factored
out, oracle arrival order collapsed to the acquired mask, and (for specs
declaring interchangeable oracle values) written-but-undecided values
canonically relabeled.  All of that is aggressive; the generator runtime
is the reference semantics, so this suite pins:

* **multiset identity** — for every registry spec at n <= 3, the
  quotiented decided-vector Counter is byte-identical to the generator
  reference (serial, sharded-serial, and subset-profile paths);
* **probe fidelity** — :meth:`MachineState.probe_step`'s predicted orbit
  key and decided value match a real fork + step at every reachable
  state of a bounded walk;
* **canonical idempotence** — :class:`ValueCanonicalizer` output is a
  fixpoint: the free values of a canonical key already appear in
  ascending first-occurrence order, so a second pass is the identity;
* **stats plumbing** — orbit counters surface in
  :class:`~repro.shm.engine.EngineStats` and merge across shards.
"""

import itertools
from collections import Counter

import pytest

from repro.shm import (
    PrefixSharingEngine,
    available_specs,
    get_spec,
    make_spec_machine,
    make_spec_runtime,
)
from repro.shm.compiled import ValueCanonicalizer
from repro.shm.engine import (
    EngineStats,
    explore_decided_subsets,
    explore_one,
    spec_factory,
)
from repro.shm.parallel import explore_decided_parallel

ALL_SPECS = sorted(available_specs())
CASES = [
    (name, n)
    for name in ALL_SPECS
    for n in (2, 3)
    if n >= get_spec(name).min_n
]


def reference_vectors(name, n, participants=None):
    return PrefixSharingEngine(
        make_spec_runtime(get_spec(name), n), participants=participants
    ).decided_vectors()


def quotient_engine(name, n, participants=None, stats=None, **kwargs):
    spec = get_spec(name)
    return PrefixSharingEngine(
        spec_factory(spec, n, quotient=True),
        participants=participants,
        stats=stats,
        quotient=True,
        relabeler=spec.value_relabel,
        **kwargs,
    )


class TestQuotientMultisetIdentity:
    @pytest.mark.parametrize("name,n", CASES)
    def test_serial_quotient_matches_generator_reference(self, name, n):
        stats = EngineStats()
        quotiented = quotient_engine(name, n, stats=stats).decided_vectors()
        assert quotiented == reference_vectors(name, n)
        assert stats.orbits > 0
        if n >= 3:
            # Exhaustive exploration of >= 3 processes always revisits
            # some orbit (commuting first steps at minimum); n=2 trees
            # can be too shallow to re-converge.
            assert stats.orbit_hits + stats.lex_pruned > 0

    @pytest.mark.parametrize("name,n", CASES)
    def test_quotient_matches_exact_engine_mode(self, name, n):
        spec = get_spec(name)
        exact = PrefixSharingEngine(
            spec_factory(spec, n)
        ).decided_vectors(memoize=False)
        assert quotient_engine(name, n).decided_vectors() == exact

    @pytest.mark.parametrize("name,n", CASES)
    def test_explore_one_quotient_flag(self, name, n):
        on = explore_one(name, n, quotient=True)
        off = explore_one(name, n, quotient=False)
        assert on.quotient and not off.quotient
        assert (on.runs, on.distinct, on.violations) == (
            off.runs,
            off.distinct,
            off.violations,
        )
        assert on.stats.orbits > 0 and off.stats.orbits == 0

    @pytest.mark.parametrize("name,n", CASES)
    def test_proper_subset_participants(self, name, n):
        participants = tuple(range(n - 1)) or (0,)
        quotiented = quotient_engine(
            name, n, participants=participants
        ).decided_vectors()
        assert quotiented == reference_vectors(name, n, participants)


class TestShardedQuotient:
    @pytest.mark.parametrize("name", ALL_SPECS)
    def test_serial_shards_share_one_orbit_memo(self, name):
        n = max(3, get_spec(name).min_n)
        stats = EngineStats()
        outcome = explore_decided_parallel(
            name, n, jobs=0, quotient=True, stats=stats
        )
        assert outcome.decisions == reference_vectors(name, n)
        assert stats.orbits > 0
        # The shared in-parent memo means later shards hit orbits the
        # earlier shards closed.
        assert stats.orbit_hits + stats.lex_pruned > 0

    def test_pooled_shards_match_reference(self):
        outcome = explore_decided_parallel(
            "wsb-grh", 3, jobs=2, quotient=True
        )
        assert outcome.decisions == reference_vectors("wsb-grh", 3)

    def test_sharded_stats_merge_orbit_counters(self):
        stats = EngineStats()
        explore_decided_parallel("renaming", 3, jobs=0, quotient=True, stats=stats)
        payload = stats.to_json()
        assert payload["orbits"] == stats.orbits > 0
        assert "orbit_hits" in payload and "lex_pruned" in payload


class TestSubsetTotals:
    @pytest.mark.parametrize("name", ALL_SPECS)
    def test_all_subsets_match_reference(self, name):
        spec = get_spec(name)
        n = max(3, spec.min_n)
        quotiented = explore_decided_subsets(
            spec_factory(spec, n, quotient=True),
            assume_symmetric=False,
            quotient=True,
            value_relabel=spec.value_relabel,
        )
        reference = explore_decided_subsets(
            make_spec_runtime(spec, n), assume_symmetric=False
        )
        subsets = [
            subset
            for size in range(1, n + 1)
            for subset in itertools.combinations(range(n), size)
        ]
        assert len(quotiented.by_subset) == len(subsets) == 2**n - 1
        for subset in subsets:
            assert quotiented.by_subset[subset] == reference.by_subset[subset]

    def test_subset_totals_sum_to_full_sweep(self):
        spec = get_spec("wsb-grh")
        profile = explore_decided_subsets(
            spec_factory(spec, 3, quotient=True),
            assume_symmetric=False,
            quotient=True,
        )
        total_runs = sum(
            sum(counter.values()) for counter in profile.by_subset.values()
        )
        reference_runs = sum(
            sum(counter.values())
            for counter in explore_decided_subsets(
                make_spec_runtime(spec, 3), assume_symmetric=False
            ).by_subset.values()
        )
        assert total_runs == reference_runs


def walk_states(make_machine, limit=400):
    """Bounded lexicographic DFS yielding live machine states."""
    stack = [make_machine()]
    seen = 0
    while stack and seen < limit:
        machine = stack.pop()
        yield machine
        seen += 1
        for pid in reversed(machine.enabled_pids()):
            child = machine.fork()
            child.step(pid)
            stack.append(child)


class TestProbeFidelity:
    @pytest.mark.parametrize("name,n", CASES)
    def test_probe_key_matches_real_step(self, name, n):
        make_machine = make_spec_machine(get_spec(name), n, frame_nodes=True)
        still = type(make_machine()).STILL_RUNNING
        # Warm-up walk: probes only resolve edges the table has already
        # traced, and tracing happens on real steps.
        for machine in walk_states(make_machine):
            pass
        checked = 0
        for machine in walk_states(make_machine):
            for pid in machine.enabled_pids():
                probed = machine.probe_step(pid)
                child = machine.fork()
                child.step(pid)
                if probed is None:
                    continue  # untraced edge / generic: real path required
                key, decided = probed
                assert key == child.orbit_key(), (name, n, pid)
                if decided is still:
                    assert child._pc[pid] >= 0
                else:
                    assert child.outputs[pid] == decided
                checked += 1
        assert checked > 0


class TestCanonicalIdempotence:
    def canonicalizer(self, name, n):
        spec = get_spec(name)
        make_machine = make_spec_machine(spec, n, frame_nodes=True)
        program = make_machine.program
        return (
            make_machine,
            ValueCanonicalizer(program, spec.value_relabel),
        )

    def canonical_free_order(self, canon, machine, key):
        """First-occurrence order of free values over a canonical key."""
        relabel = canon.relabel
        index = canon._oracle
        values = machine._oracle_values[index]
        pending = set(values[len(machine._oracle_arrivals[index]) :])
        pcs, cells, _, _ = key
        seen, order = set(), []
        for cell in cells:
            for value in relabel.cell_values(cell):
                if value not in seen:
                    seen.add(value)
                    order.append(value)
        for node in pcs:
            if node < 0:
                continue
            for value in canon._values_at(node):
                if value not in seen:
                    seen.add(value)
                    order.append(value)
        return [value for value in order if value not in pending]

    @pytest.mark.parametrize("name", ["renaming"])
    @pytest.mark.parametrize("n", [2, 3])
    def test_canonical_keys_are_fixpoints(self, name, n):
        make_machine, canon = self.canonicalizer(name, n)
        relabeled = 0
        # Lexicographic DFS hands oracle values out in order along its
        # first branches; out-of-order acquisitions (the states that
        # need relabeling) only appear a few thousand states in.
        for machine in walk_states(make_machine, limit=6000):
            key, inverse = canon.canonical(machine)
            if key is None:
                continue
            free = self.canonical_free_order(canon, machine, key)
            assert free == sorted(free), (n, key)
            if inverse:
                relabeled += 1
                # Inverse maps canonical values back onto this state's —
                # a bijection over the same free-value set.
                assert sorted(inverse) == sorted(inverse.values())
        if n >= 3:
            # n=2's committed vector hands values out in slot-sorted
            # order along every schedule the bounded walk reaches.
            assert relabeled > 0, "walk exercised no non-trivial relabeling"

    def test_canonical_deterministic_across_calls(self):
        make_machine, canon = self.canonicalizer("renaming", 3)
        for machine in walk_states(make_machine, limit=60):
            first = canon.canonical(machine)
            second = canon.canonical(machine)
            assert first == second

    def test_relabeled_states_share_canonical_key(self):
        # States reached by acquiring oracle values in different pid
        # orders differ only by a value permutation; canonicalization
        # must collapse them even though their raw orbit keys differ.
        # n=4 is the smallest size whose committed vector has enough
        # distinct values for permuted twins to both be reachable.
        make_machine, canon = self.canonicalizer("renaming", 4)
        by_canonical: dict = {}
        collapsed = 0
        for machine in walk_states(make_machine, limit=2000):
            key, _ = canon.canonical(machine)
            if key is None:
                continue
            raw = machine.orbit_key()
            known = by_canonical.setdefault(key, raw)
            if known != raw:
                collapsed += 1
        assert collapsed > 0, "no two raw orbits shared a canonical key"


class TestOrbitKeyCoarseness:
    @pytest.mark.parametrize("name,n", CASES)
    def test_orbit_key_factors_out_decided_outputs(self, name, n):
        # Exact state keys include outputs; orbit keys must not.
        make_machine = make_spec_machine(get_spec(name), n, frame_nodes=True)
        for machine in walk_states(make_machine, limit=100):
            key = machine.orbit_key()
            if key is None:
                continue
            pcs, cells, acquired, generic = key
            assert len(pcs) == n
            assert tuple(machine.outputs) not in (key,)  # structural shape
            state = machine.state_key()
            assert state[0] == pcs  # same pc component as the exact key

    def test_arrival_order_collapses(self):
        # Two states with the same acquired set but different arrival
        # order share an orbit key (renaming: pure GSB oracle).
        make_machine = make_spec_machine(get_spec("wsb-grh"), 2, frame_nodes=True)
        seen: dict = {}
        merged = 0
        for machine in walk_states(make_machine, limit=200):
            key = machine.orbit_key()
            state = machine.state_key()
            if key in seen and seen[key] != state:
                merged += 1
        # Counting merges is schedule-dependent; the multiset-identity
        # tests above are the correctness pin.  Here we only require the
        # key to be computable everywhere.
        assert merged >= 0
