"""Single-writer multi-reader atomic register arrays (Section 2.1).

The shared memory is a set of named arrays ``A[1..n]`` where only process i
writes ``A[i]`` and every process may read every cell.  Atomicity is
enforced structurally: the runtime executes one operation per step, so
every read, write and snapshot is indivisible.

Cells track a per-writer version counter so that tests (and the snapshot
implementation) can observe write ordering without extra instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable


class RegisterPermissionError(RuntimeError):
    """Raised when a process writes a cell it does not own."""


@dataclass
class ArraySpec:
    """Declarative array description for :class:`repro.shm.runtime.Runtime`.

    Passing ``arrays={"X": ArraySpec(n=9, multi_writer=True)}`` creates a
    9-cell multi-writer array; a bare value creates a single-writer array
    with one cell per process initialized to that value.
    """

    initial: Any = None
    n: int | None = None
    multi_writer: bool = False


class SharedArray:
    """A named array of n single-writer multi-reader atomic registers.

    Args:
        name: array name used by operations.
        n: number of cells (one per process index, 0-based internally).
        initial: initial cell value (the paper's ``bottom``), or an
            iterable of n per-cell initial values.
    """

    def __init__(self, name: str, n: int, initial: Any = None, multi_writer: bool = False):
        if n < 1:
            raise ValueError(f"array {name!r} needs at least one cell, got n={n}")
        self.name = name
        self.n = n
        self.multi_writer = multi_writer
        if isinstance(initial, (list, tuple)):
            if len(initial) != n:
                raise ValueError(
                    f"array {name!r}: {len(initial)} initial values for {n} cells"
                )
            self._cells = list(initial)
        else:
            self._cells = [initial] * n
        self._versions = [0] * n
        self.write_count = 0
        self.read_count = 0
        self.snapshot_count = 0

    def write(self, pid: int, value: Any) -> None:
        """Process ``pid`` writes its own cell (1WnR discipline)."""
        self._check_index(pid)
        self._cells[pid] = value
        self._versions[pid] += 1
        self.write_count += 1

    def write_cell(self, pid: int, index: int, value: Any) -> None:
        """Write any cell of a multi-writer array (MWMR primitive)."""
        if not self.multi_writer:
            raise RegisterPermissionError(
                f"array {self.name!r} is single-writer: process {pid} may not "
                f"write cell {index}; create the array with multi_writer=True"
            )
        self._check_index(index)
        self._cells[index] = value
        self._versions[index] += 1
        self.write_count += 1

    def read(self, pid: int, index: int) -> Any:
        """Any process reads any single cell."""
        self._check_index(index)
        self.read_count += 1
        return self._cells[index]

    def snapshot(self) -> tuple[Any, ...]:
        """Atomic scan of all cells (executed within one runtime step)."""
        self.snapshot_count += 1
        return tuple(self._cells)

    def versions(self) -> tuple[int, ...]:
        """Per-cell write counters; observability hook for tests."""
        return tuple(self._versions)

    def versioned_snapshot(self) -> tuple[tuple[Any, int], ...]:
        """Atomic scan pairing each value with its version counter."""
        self.snapshot_count += 1
        return tuple(zip(self._cells, self._versions))

    def clone(self) -> "SharedArray":
        """Independent copy of this array (cells, versions and counters).

        Cell *values* are shared by reference: the model's algorithms treat
        written values as immutable (tuples, ints, identities), so a shallow
        copy of the cell list suffices and keeps forking cheap.
        """
        dup = SharedArray.__new__(SharedArray)
        dup.name = self.name
        dup.n = self.n
        dup.multi_writer = self.multi_writer
        dup._cells = list(self._cells)
        dup._versions = list(self._versions)
        dup.write_count = self.write_count
        dup.read_count = self.read_count
        dup.snapshot_count = self.snapshot_count
        return dup

    def state_key(self) -> tuple:
        """Hashable signature of the observable array state.

        Versions are included because :meth:`versioned_snapshot` exposes
        them to algorithms; operation counters are observability-only and
        deliberately excluded.
        """
        return (self.name, tuple(self._cells), tuple(self._versions))

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n:
            raise IndexError(
                f"array {self.name!r} has cells 0..{self.n - 1}, got {index}"
            )

    def __repr__(self) -> str:
        return f"SharedArray({self.name!r}, n={self.n}, cells={self._cells!r})"


class SharedMemory:
    """The collection of named shared arrays of one run."""

    def __init__(self, n: int):
        self.n = n
        self._arrays: dict[str, SharedArray] = {}

    def add_array(
        self,
        name: str,
        initial: Any = None,
        n: int | None = None,
        multi_writer: bool = False,
    ) -> SharedArray:
        """Create and register an array; n defaults to the process count."""
        if name in self._arrays:
            raise ValueError(f"array {name!r} already exists")
        array = SharedArray(
            name, self.n if n is None else n, initial, multi_writer=multi_writer
        )
        self._arrays[name] = array
        return array

    def array(self, name: str) -> SharedArray:
        if name not in self._arrays:
            raise KeyError(
                f"no shared array named {name!r}; declared arrays: "
                f"{sorted(self._arrays)}"
            )
        return self._arrays[name]

    def names(self) -> Iterable[str]:
        return self._arrays.keys()

    def clone(self) -> "SharedMemory":
        """Independent copy of the whole memory (see :meth:`SharedArray.clone`)."""
        dup = SharedMemory.__new__(SharedMemory)
        dup.n = self.n
        dup._arrays = {name: array.clone() for name, array in self._arrays.items()}
        return dup

    def state_key(self) -> tuple:
        """Hashable signature of all array contents, in name order."""
        return tuple(
            self._arrays[name].state_key() for name in sorted(self._arrays)
        )

    def total_operations(self) -> dict[str, int]:
        """Aggregate operation counters across arrays (for benchmarks)."""
        totals = {"writes": 0, "reads": 0, "snapshots": 0}
        for array in self._arrays.values():
            totals["writes"] += array.write_count
            totals["reads"] += array.read_count
            totals["snapshots"] += array.snapshot_count
        return totals
