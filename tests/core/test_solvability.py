"""Tests for solvability (Theorems 9-11, Corollaries 2-5, Theorem 10)."""

import math

import pytest

from repro.core import (
    GSBTask,
    BoundVector,
    Solvability,
    SymmetricGSBTask,
    binomial_gcd,
    binomials_coprime,
    brute_force_communication_free,
    classify,
    communication_free_decision_function,
    decision_function_is_valid,
    election,
    homonymous_decision_function,
    is_communication_free_solvable,
    is_prime_power,
    k_slot,
    perfect_renaming,
    renaming,
    weak_symmetry_breaking,
    wsb_wait_free_solvable,
    x_bounded_homonymous_renaming,
)


class TestTheorem9:
    def test_closed_form_examples(self):
        # (2n-1)-renaming: trivial.
        assert is_communication_free_solvable(renaming(5, 9))
        # (2n-2)-renaming: u = 1 < ceil(9/8) is false... ceil(9/8)=2 > 1.
        assert not is_communication_free_solvable(renaming(5, 8))
        # WSB: l = 1 > 0 (Corollary 3).
        assert not is_communication_free_solvable(weak_symmetry_breaking(5))
        # m = 1 always trivial.
        assert is_communication_free_solvable(SymmetricGSBTask(5, 1, 0, 5))

    def test_threshold_exact(self):
        # m > 1, l = 0: solvable iff u >= ceil((2n-1)/m).
        n, m = 6, 3
        threshold = math.ceil((2 * n - 1) / m)  # 4
        assert is_communication_free_solvable(SymmetricGSBTask(n, m, 0, threshold))
        assert not is_communication_free_solvable(
            SymmetricGSBTask(n, m, 0, threshold - 1)
        )

    def test_matches_brute_force_small(self):
        # Exhaustive delta-space search validates the closed form / the
        # group-size argument for every small symmetric task.
        for n in (2, 3):
            for m in (1, 2, 3):
                for low in range(0, n + 1):
                    for high in range(low, n + 1):
                        task = SymmetricGSBTask(n, m, low, high)
                        if not task.is_feasible:
                            continue
                        assert is_communication_free_solvable(
                            task
                        ) == brute_force_communication_free(task), task

    def test_matches_brute_force_asymmetric(self):
        cases = [
            GSBTask(3, BoundVector(lower=(0, 0), upper=(2, 3))),
            GSBTask(3, BoundVector(lower=(1, 0), upper=(3, 3))),
            GSBTask(3, BoundVector(lower=(0, 1), upper=(1, 3))),
            election(3),
        ]
        for task in cases:
            assert is_communication_free_solvable(
                task
            ) == brute_force_communication_free(task), task

    def test_witness_function_valid(self):
        task = renaming(5, 9)
        delta = communication_free_decision_function(task)
        assert delta is not None
        assert decision_function_is_valid(task, delta)

    def test_witness_none_for_unsolvable(self):
        assert communication_free_decision_function(weak_symmetry_breaking(4)) is None

    def test_infeasible_not_solvable(self):
        assert not is_communication_free_solvable(SymmetricGSBTask(6, 3, 3, 3))


class TestCorollary2:
    def test_homonymous_function_solves_task(self):
        for n, x in [(4, 2), (5, 2), (6, 3), (5, 1)]:
            task = x_bounded_homonymous_renaming(n, x)
            delta = homonymous_decision_function(n, x)
            assert decision_function_is_valid(task, delta)

    def test_homonymous_task_trivial_by_theorem_9(self):
        for n, x in [(4, 2), (5, 2), (6, 3)]:
            assert is_communication_free_solvable(
                x_bounded_homonymous_renaming(n, x)
            )

    def test_rejects_bad_x(self):
        with pytest.raises(ValueError):
            homonymous_decision_function(4, 0)


class TestTheorem10Condition:
    def test_gcd_values(self):
        assert binomial_gcd(2) == 2
        assert binomial_gcd(3) == 3
        assert binomial_gcd(4) == 2
        assert binomial_gcd(5) == 5
        assert binomial_gcd(6) == 1
        assert binomial_gcd(9) == 3
        assert binomial_gcd(12) == 1

    def test_gcd_empty_for_small_n(self):
        assert binomial_gcd(0) == 0
        assert binomial_gcd(1) == 0

    def test_coprime_iff_not_prime_power(self):
        # Ram's theorem, checked over a wide range.
        for n in range(2, 200):
            assert binomials_coprime(n) == (not is_prime_power(n)), n

    def test_prime_power_detection(self):
        assert is_prime_power(2) and is_prime_power(8) and is_prime_power(27)
        assert is_prime_power(7) and is_prime_power(49)
        assert not is_prime_power(6) and not is_prime_power(12)
        assert not is_prime_power(1) and not is_prime_power(0)

    def test_wsb_solvable_values(self):
        assert not wsb_wait_free_solvable(4)
        assert wsb_wait_free_solvable(6)
        assert not wsb_wait_free_solvable(8)
        assert wsb_wait_free_solvable(10)


class TestClassification:
    def test_infeasible(self):
        verdict, reason = classify(SymmetricGSBTask(6, 3, 3, 3))
        assert verdict is Solvability.INFEASIBLE
        assert "Lemma 1" in reason

    def test_trivial_renaming(self):
        verdict, _ = classify(renaming(5, 9))
        assert verdict is Solvability.TRIVIAL

    def test_single_process(self):
        verdict, _ = classify(SymmetricGSBTask(1, 1, 1, 1))
        assert verdict is Solvability.TRIVIAL

    def test_classify_parameters_rejects_malformed_specs(self):
        # Same error contract as the SymmetricGSBTask constructor the old
        # implementation routed through: malformed is an error, not
        # INFEASIBLE.
        from repro.core import GSBSpecificationError, classify_parameters

        with pytest.raises(GSBSpecificationError, match="at least one"):
            classify_parameters(0, 3, 0, 0)
        with pytest.raises(GSBSpecificationError, match="at least one"):
            classify_parameters(-2, 3, 0, 1)
        with pytest.raises(GSBSpecificationError, match="m must be"):
            classify_parameters(6, 0, 0, 3)
        with pytest.raises(GSBSpecificationError, match="lower bound 5"):
            classify_parameters(6, 3, 5, 2)
        with pytest.raises(GSBSpecificationError, match="negative"):
            classify_parameters(6, 3, 0, -1)

    def test_classify_parameters_matches_task_classification(self):
        from repro.core import classify_parameters

        for n in range(1, 10):
            for m in range(1, n + 1):
                for low in range(n + 1):
                    for high in range(low, n + 1):
                        task = SymmetricGSBTask(n, m, low, high)
                        assert classify_parameters(n, m, low, high) == (
                            classify(task)
                        )

    def test_perfect_renaming_unsolvable(self):
        for n in (2, 3, 5, 6):
            verdict, reason = classify(perfect_renaming(n))
            assert verdict is Solvability.UNSOLVABLE
            assert "Corollary 5" in reason

    def test_perfect_renaming_in_disguise(self):
        # <n, n, 0, 1> has the same outputs as <n, n, 1, 1>.
        verdict, reason = classify(SymmetricGSBTask(5, 5, 0, 1))
        assert verdict is Solvability.UNSOLVABLE
        assert "Corollary 5" in reason

    def test_election_unsolvable(self):
        for n in (3, 5):
            verdict, reason = classify(election(n))
            assert verdict is Solvability.UNSOLVABLE
            assert "Theorem 11" in reason

    def test_election_n2_is_perfect_renaming(self):
        # For n=2 the election bounds coincide with <2,2,1,1>.
        verdict, reason = classify(election(2))
        assert verdict is Solvability.UNSOLVABLE
        assert "Corollary 5" in reason

    def test_wsb_depends_on_binomials(self):
        verdict, _ = classify(weak_symmetry_breaking(6))
        assert verdict is Solvability.SOLVABLE
        verdict, _ = classify(weak_symmetry_breaking(4))
        assert verdict is Solvability.UNSOLVABLE
        verdict, _ = classify(weak_symmetry_breaking(8))
        assert verdict is Solvability.UNSOLVABLE

    def test_renaming_2n2_matches_wsb(self):
        verdict, _ = classify(renaming(6, 10))
        assert verdict is Solvability.SOLVABLE
        verdict, _ = classify(renaming(4, 6))
        assert verdict is Solvability.UNSOLVABLE

    def test_theorem_10_l_geq_1(self):
        # l >= 1, m > 1, prime-power n: unsolvable.
        verdict, reason = classify(k_slot(4, 3))
        assert verdict is Solvability.UNSOLVABLE
        assert "Theorem 10" in reason
        # Canonicalization catches tasks whose raw l is 0.
        verdict, _ = classify(SymmetricGSBTask(4, 2, 0, 2))  # = <4,2,2,2>
        assert verdict is Solvability.UNSOLVABLE

    def test_open_cases_reported_open(self):
        # k-slot at coprime n is between trivial and perfect renaming.
        verdict, _ = classify(k_slot(6, 5))
        assert verdict is Solvability.OPEN

    def test_asymmetric_non_election_open(self):
        task = GSBTask(4, BoundVector(lower=(2, 1), upper=(2, 2)))
        verdict, _ = classify(task)
        assert verdict is Solvability.OPEN
