"""Immediate-snapshot views and their comparison-based canonical forms.

After r rounds of (iterated) immediate snapshot, a process's local state is
a nested view: round 1 yields the set of (pid, identity) pairs it saw;
round t yields the set of (pid, round-(t-1) state) pairs.  Views are
represented as immutable, hashable trees:

* ``("id", identity)`` — the round-0 state;
* ``("view", ((pid, inner), ...))`` — a round state, entries sorted by pid.

A *comparison-based, index-independent* algorithm cannot distinguish two
views that differ by an order-preserving relabeling of identities moving
with their processes (Section 2.2).  The protocol complexes use canonical
executions in which process pid carries identity pid + 1, so pid order and
identity order coincide, and the normal form is simply: replace every pid
by its rank among the pids occurring in the tree, and every identity by its
rank among the identities occurring.  Two vertices with equal canonical
views must receive equal decisions — the constraint that the decision-map
search and the Theorem 11 argument exploit.
"""

from __future__ import annotations

from typing import Hashable, Iterable

View = Hashable


def base_view(identity: int) -> View:
    """Round-0 state: the process's own identity."""
    return ("id", identity)


def round_view(seen: Iterable[tuple[int, View]]) -> View:
    """Round-t state from the (pid, state_{t-1}) pairs seen."""
    return ("view", tuple(sorted(seen, key=lambda pair: pair[0])))


def pids_in_view(view: View) -> set[int]:
    """All pids occurring anywhere in a view tree (empty for base views)."""
    if view[0] == "id":
        return set()
    pids: set[int] = set()
    for pid, inner in view[1]:
        pids.add(pid)
        pids |= pids_in_view(inner)
    return pids


def identities_in_view(view: View) -> set[int]:
    """All identities occurring anywhere in a view tree."""
    if view[0] == "id":
        return {view[1]}
    identities: set[int] = set()
    for _pid, inner in view[1]:
        identities |= identities_in_view(inner)
    return identities


def canonical_view(view: View) -> View:
    """Comparison-based normal form of a view tree (no self marker)."""
    pid_rank = {
        pid: position for position, pid in enumerate(sorted(pids_in_view(view)))
    }
    identity_rank = {
        identity: position
        for position, identity in enumerate(sorted(identities_in_view(view)))
    }
    return _relabel(view, pid_rank, identity_rank)


def canonical_local_state(pid: int, view: View) -> View:
    """Canonical class of a *vertex* (pid, view): self rank + view shape.

    A process's local state includes knowing which of the seen processes it
    is (it knows its own identity), so the comparison-based class of a
    vertex pairs the owner's rank among the pids occurring in the view
    with the relabeled view tree.  This is the equivalence under which
    comparison-based index-independent decisions must be constant.
    """
    pids = sorted(pids_in_view(view))
    if pids:
        self_rank = pids.index(pid)
    else:
        # Base view: the process has seen nobody; rank is trivially 0.
        self_rank = 0
    return ("self", self_rank, canonical_view(view))


def _relabel(view: View, pid_rank: dict[int, int], identity_rank: dict[int, int]) -> View:
    if view[0] == "id":
        return ("id", identity_rank[view[1]])
    entries = tuple(
        sorted(
            (pid_rank[pid], _relabel(inner, pid_rank, identity_rank))
            for pid, inner in view[1]
        )
    )
    return ("view", entries)


def view_size(view: View) -> int:
    """Number of pids visible at the top level (1 for base views)."""
    if view[0] == "id":
        return 1
    return len(view[1])


def is_solo_view(view: View, rounds: int) -> bool:
    """Whether a view is the r-round *solo* state (only ever saw itself).

    Solo states of different processes share one canonical class — the
    pivot of Theorem 11's contradiction.
    """
    if view[0] == "id":
        return rounds == 0
    if len(view[1]) != 1:
        return False
    ((_pid, inner),) = view[1]
    return is_solo_view(inner, rounds - 1)


def render_view(view: View) -> str:
    """Human-readable rendering used by example scripts and error messages."""
    if view[0] == "id":
        return f"id={view[1]}"
    inner = ", ".join(f"p{pid}:{render_view(sub)}" for pid, sub in view[1])
    return "{" + inner + "}"
