"""The acceptance replay pass: every stored certificate must check.

This is the tier-1 embodiment of the CI criterion: build a universe
store, run the close-open sweep, then replay every certificate — the
ones baked into cell shards and the ones the sweep cached — with the
standalone checkers.  Every non-OPEN node must carry a certificate id
that resolves to a payload.
"""

import pytest

from repro.core import Solvability
from repro.decision import DecisionBudget, check_certificate_payload
from repro.universe import UniverseStore


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    store = UniverseStore(tmp_path_factory.mktemp("universe") / "store")
    store.build(8, 6, jobs=0)
    store.close_open(DecisionBudget(max_rounds=1, max_assignments=50_000))
    return store


class TestStoredCertificates:
    def test_every_non_open_node_is_certified(self, store):
        graph = store.load()
        for node in graph.nodes():
            if node.solvability != Solvability.OPEN.value:
                assert node.certificate_id, node.key
                assert (
                    graph.certificate_payload(node.certificate_id) is not None
                ), node.key

    def test_every_graph_certificate_replays(self, store):
        graph = store.load()
        assert graph.certificate_payloads
        failures = {
            certificate_id: problems
            for certificate_id, payload in graph.certificate_payloads.items()
            if (problems := check_certificate_payload(payload))
        }
        assert failures == {}

    def test_every_cached_certificate_replays(self, store):
        failures = {
            key: problems
            for key, payload in store.decision_cache.iter_certificates()
            if (problems := check_certificate_payload(payload))
        }
        assert failures == {}

    def test_certificate_ids_match_content(self, store):
        from repro.decision import certificate_id

        graph = store.load()
        for stored_id, payload in graph.certificate_payloads.items():
            assert certificate_id(payload) == stored_id

    def test_open_count_not_worse_than_classifier(self, store):
        # The pipeline may only close OPEN verdicts, never invent them.
        from repro.core import classify_parameters

        graph = store.load()
        for node in graph.nodes():
            legacy = classify_parameters(*node.key)[0]
            if legacy is not Solvability.OPEN:
                assert node.solvability == legacy.value
