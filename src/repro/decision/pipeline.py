"""The unified decision pipeline: one ``decide()`` over all four tiers.

``decide(n, m, l, u)`` canonicalizes the task to its synonym-class
representative, then runs the procedures of
:mod:`repro.decision.procedures` in cost order — closed forms, value
padding, reduction closure over a universe graph (one family row is
built on demand when none is supplied), and bounded empirical decision —
returning a :class:`Verdict` that carries the verdict, the tier that
produced it, a machine-checkable certificate, and any OPEN evidence the
expensive tiers accumulated.

Verdicts are memoized in an optional
:class:`repro.decision.cache.CertificateCache`: repeat calls (same
canonical parameters) are a dict lookup, across processes.  Cached OPEN
verdicts remember the budget they were computed under and are recomputed
when asked with a strictly larger budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.solvability import Solvability
from .cache import CertificateCache
from .certificates import Certificate, certificate_from_payload
from .procedures import (
    DecisionBudget,
    ProcedureResult,
    canonical_key,
    closed_form,
    empirical,
    reduction_closure,
    value_padding,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..universe.graph import UniverseGraph

Key = tuple[int, int, int, int]


@dataclass(frozen=True)
class Verdict:
    """The pipeline's answer for one task."""

    task: Key  # parameters as given
    canonical: Key  # the synonym-class representative decided
    solvability: Solvability
    reason: str
    tier: int  # 0 = cache hit (original tier in `procedure`)
    procedure: str
    certificate: Certificate | None = None
    evidence: tuple[str, ...] = ()
    cached: bool = False
    seconds: float = 0.0
    #: Wall-clock per tier that ran, in run order (empty on cache hits).
    timings: tuple[tuple[str, float], ...] = ()
    #: What the empirical tier actually spent of its budget.
    budget_consumed: dict = field(default_factory=dict)

    @property
    def certificate_id(self) -> str:
        return self.certificate.id if self.certificate is not None else ""

    def to_json(self) -> dict:
        payload = {
            "task": list(self.task),
            "canonical": list(self.canonical),
            "solvability": self.solvability.value,
            "reason": self.reason,
            "tier": self.tier,
            "procedure": self.procedure,
            "certificate_id": self.certificate_id or None,
            "certificate": (
                self.certificate.payload()
                if self.certificate is not None
                else None
            ),
            "evidence": list(self.evidence),
            "cached": self.cached,
            "seconds": self.seconds,
            "timings": {name: seconds for name, seconds in self.timings},
            "budget_consumed": dict(self.budget_consumed),
        }
        return payload


def cache_entry(verdict: Verdict, budget: DecisionBudget) -> dict:
    """The disk form of a verdict (what CertificateCache stores)."""
    return {
        "solvability": verdict.solvability.value,
        "reason": verdict.reason,
        "tier": verdict.tier,
        "procedure": verdict.procedure,
        "certificate_id": verdict.certificate_id or None,
        "certificate": (
            verdict.certificate.payload()
            if verdict.certificate is not None
            else None
        ),
        "evidence": list(verdict.evidence),
        "budget": budget.signature(),
    }


def _verdict_from_entry(
    task: Key, canonical: Key, entry: dict, seconds: float
) -> Verdict:
    payload = entry.get("certificate")
    certificate = (
        certificate_from_payload(payload) if payload is not None else None
    )
    return Verdict(
        task=task,
        canonical=canonical,
        solvability=Solvability(entry["solvability"]),
        reason=entry["reason"],
        tier=int(entry.get("tier", 0)),
        procedure=entry.get("procedure", "cache"),
        certificate=certificate,
        evidence=tuple(entry.get("evidence", ())),
        cached=True,
        seconds=seconds,
    )


@dataclass
class DecisionPipeline:
    """Tiers + budget + optional cache and graph, wired together.

    ``graph`` may be a pre-assembled :class:`UniverseGraph` (the CLI
    passes the loaded store); when absent and the budget allows, tier 3
    assembles the task's family row ``(n, 1..max_m)`` on demand — every
    universe edge kind stays within one n, so the row is the complete
    tier-3 context for a single task.
    """

    budget: DecisionBudget = field(default_factory=DecisionBudget)
    cache: CertificateCache | None = None
    graph: "UniverseGraph | None" = None
    _row_graphs: dict = field(default_factory=dict, repr=False)

    def decide(self, n: int, m: int, low: int, high: int) -> Verdict:
        started = time.perf_counter()
        task: Key = (n, m, low, high)
        canonical = canonical_key(n, m, low, high)
        if self.cache is not None:
            entry = self.cache.get(canonical)
            if entry is not None and self._entry_fresh(entry):
                try:
                    return _verdict_from_entry(
                        task, canonical, entry, time.perf_counter() - started
                    )
                except (KeyError, TypeError, ValueError):
                    pass  # malformed entry: treat as a miss and rewrite it
        result, evidence, timings = self._run_tiers(canonical)
        verdict = Verdict(
            task=task,
            canonical=canonical,
            solvability=result.solvability,
            reason=result.reason,
            tier=result.tier,
            procedure=result.procedure,
            certificate=result.certificate,
            evidence=tuple(evidence),
            cached=False,
            seconds=time.perf_counter() - started,
            timings=tuple(timings),
            budget_consumed=dict(result.consumed),
        )
        if self.cache is not None:
            self.cache.put(canonical, cache_entry(verdict, self.budget))
        return verdict

    def _entry_fresh(self, entry: dict) -> bool:
        """Non-OPEN entries never go stale; OPEN ones expire under a
        larger budget (a deeper search might now decide them)."""
        if entry.get("solvability") != Solvability.OPEN.value:
            return True
        stored = entry.get("budget", {})
        current = self.budget.signature()
        return all(
            stored.get(name, -1) >= value for name, value in current.items()
        )

    def _run_tiers(
        self, key: Key
    ) -> tuple[ProcedureResult, list[str], list[tuple[str, float]]]:
        evidence: list[str] = []
        timings: list[tuple[str, float]] = []

        def timed(name, procedure, *args, **kwargs):
            start = time.perf_counter()
            outcome = procedure(*args, **kwargs)
            timings.append((name, time.perf_counter() - start))
            return outcome

        result = timed("closed-form", closed_form, *key)
        if result.decided:
            return result, evidence, timings
        padded = timed("value-padding", value_padding, *key)
        if padded is not None and padded.decided:
            return padded, evidence, timings
        graph = self._graph_for(key)
        if graph is not None:
            closed = timed(
                "reduction-closure", reduction_closure, graph, key
            )
            if closed is not None and closed.decided:
                return closed, evidence, timings
        outcome = timed(
            "decision-map", empirical, *key, budget=self.budget
        )
        evidence.extend(outcome.evidence)
        if outcome.decided:
            return outcome, evidence, timings
        # Everything exhausted: faithfully OPEN, with the evidence trail.
        # Attributed to the empirical tier (the last one that ran, and
        # what close_open writes for OPEN survivors) while keeping the
        # classifier's more informative reason line.
        return (
            ProcedureResult(
                solvability=Solvability.OPEN,
                reason=result.reason,
                tier=outcome.tier,
                procedure=outcome.procedure,
                consumed=outcome.consumed,
            ),
            evidence,
            timings,
        )

    def _graph_for(self, key: Key) -> "UniverseGraph | None":
        if self.graph is not None:
            return self.graph if key in self.graph else None
        if not self.budget.use_graph:
            return None
        n = key[0]
        if n > self.budget.graph_max_n:
            return None
        max_m = max(key[1], self.budget.graph_max_m)
        row = self._row_graphs.get((n, max_m))
        if row is None:
            from ..universe.graph import assemble, build_cell

            row = assemble(
                (build_cell(n, m) for m in range(1, max_m + 1)),
                cross_family=True,
            )
            self._row_graphs[(n, max_m)] = row
        return row if key in row else None


def decide(
    n: int,
    m: int,
    low: int,
    high: int,
    budget: DecisionBudget | None = None,
    cache: CertificateCache | None = None,
    graph: "UniverseGraph | None" = None,
) -> Verdict:
    """One-shot ``decide`` (constructs a throwaway pipeline)."""
    pipeline = DecisionPipeline(
        budget=budget or DecisionBudget(), cache=cache, graph=graph
    )
    return pipeline.decide(n, m, low, high)
