"""Unit tests for the fault-injection seam (:mod:`repro.testing.faults`).

The registry is the foundation the whole chaos suite stands on, so its
semantics are pinned precisely here: zero-cost disarm, fire windows
(``after``/``times``), context-manager cleanup, and the ``REPRO_FAULTS``
spec grammar forked workers parse — including the requirement that a
typo'd spec fails loudly instead of silently measuring the healthy path.
"""

import pytest

from repro.testing import FaultError, FaultRegistry
from repro.testing.faults import install_from_env, parse_spec


class TestRegistrySemantics:
    def test_disarmed_registry_is_inert(self):
        registry = FaultRegistry()
        assert registry.active is False
        assert registry.fire("anything") is None
        assert registry.counters() == {}

    def test_install_fire_and_result_passthrough(self):
        registry = FaultRegistry()
        registry.install("point", lambda context: context["value"] * 2)
        assert registry.active is True
        assert registry.fire("point", value=21) == 42
        assert registry.counters() == {"point": {"seen": 1, "fired": 1}}

    def test_unarmed_point_is_silent_while_another_is_armed(self):
        registry = FaultRegistry()
        registry.install("armed", lambda context: "boom")
        assert registry.fire("other") is None

    def test_after_skips_leading_passes(self):
        registry = FaultRegistry()
        registry.install("point", lambda context: "boom", after=2)
        assert registry.fire("point") is None
        assert registry.fire("point") is None
        assert registry.fire("point") == "boom"
        assert registry.counters()["point"] == {"seen": 3, "fired": 1}

    def test_times_exhausts_the_arm(self):
        registry = FaultRegistry()
        registry.install("point", lambda context: "boom", times=2)
        assert [registry.fire("point") for _ in range(4)] == [
            "boom", "boom", None, None,
        ]
        assert registry.counters()["point"] == {"seen": 4, "fired": 2}

    def test_after_and_times_compose(self):
        registry = FaultRegistry()
        registry.install("point", lambda context: "boom", after=1, times=1)
        assert [registry.fire("point") for _ in range(3)] == [
            None, "boom", None,
        ]

    def test_raising_action_propagates_to_the_call_site(self):
        registry = FaultRegistry()

        def explode(context):
            raise FaultError("injected")

        registry.install("point", explode)
        with pytest.raises(FaultError, match="injected"):
            registry.fire("point")

    def test_clear_one_point_leaves_the_rest_armed(self):
        registry = FaultRegistry()
        registry.install("a", lambda context: 1)
        registry.install("b", lambda context: 2)
        registry.clear("a")
        assert registry.active is True
        assert registry.fire("a") is None
        assert registry.fire("b") == 2
        registry.clear()
        assert registry.active is False

    def test_reinstall_replaces_the_previous_arm(self):
        registry = FaultRegistry()
        registry.install("point", lambda context: "old", times=1)
        registry.install("point", lambda context: "new")
        assert registry.fire("point") == "new"
        assert registry.fire("point") == "new"  # old times=1 is gone

    def test_injected_context_manager_disarms_on_exit(self):
        registry = FaultRegistry()
        with registry.injected("point", lambda context: "boom"):
            assert registry.active is True
            assert registry.fire("point") == "boom"
        assert registry.active is False
        assert registry.fire("point") is None

    def test_injected_disarms_even_when_the_block_raises(self):
        registry = FaultRegistry()
        with pytest.raises(RuntimeError):
            with registry.injected("point", lambda context: "boom"):
                raise RuntimeError("test body failed")
        assert registry.active is False


class TestSpecGrammar:
    def test_single_clause(self):
        arms = parse_spec("serve.worker.kill=exit:after=25")
        assert len(arms) == 1
        point, action, after, times = arms[0]
        assert point == "serve.worker.kill"
        assert callable(action)
        assert (after, times) == (25, None)

    def test_multiple_clauses_and_whitespace(self):
        arms = parse_spec(
            " backend.pack.read=raise:times=3 ; "
            "serve.request.hold=delay:seconds=0.01 ;"
        )
        assert [arm[0] for arm in arms] == [
            "backend.pack.read", "serve.request.hold",
        ]
        assert arms[0][3] == 3

    def test_empty_spec_means_no_arms(self):
        assert parse_spec("") == []
        assert parse_spec(" ; ; ") == []

    def test_truncate_action_trims_the_payload_context(self):
        (point, action, _after, _times), = parse_spec(
            "serve.response.write=truncate:keep=4"
        )
        assert action({"payload": b"HTTP/1.1 200 OK"}) == b"HTTP"
        assert action({}) is None  # no payload to truncate

    def test_raise_action_raises_fault_error(self):
        (_, action, _, _), = parse_spec(
            "backend.pack.read=raise:message=torn read"
        )
        with pytest.raises(FaultError, match="torn read"):
            action({})

    def test_delay_action_sleeps(self):
        import time

        (_, action, _, _), = parse_spec(
            "serve.request.hold=delay:seconds=0.05"
        )
        started = time.monotonic()
        action({})
        assert time.monotonic() - started >= 0.04

    @pytest.mark.parametrize(
        "spec",
        [
            "no-equals-sign",
            "=raise",
            "point=nosuchaction",
            "point=raise:orphan-param",
        ],
    )
    def test_malformed_specs_fail_loudly(self, spec):
        with pytest.raises(ValueError):
            parse_spec(spec)


class TestEnvInstallation:
    def test_install_from_text(self):
        registry = FaultRegistry()
        installed = install_from_env(
            registry, text="a=raise;b=delay:seconds=0"
        )
        assert installed == 2
        assert registry.active is True
        with pytest.raises(FaultError):
            registry.fire("a")

    def test_install_from_environment_variable(self, monkeypatch):
        from repro.testing.faults import ENV_VAR

        monkeypatch.setenv(ENV_VAR, "point=raise:after=1")
        registry = FaultRegistry()
        assert install_from_env(registry) == 1
        assert registry.fire("point") is None  # after=1 skips the first
        with pytest.raises(FaultError):
            registry.fire("point")

    def test_empty_environment_installs_nothing(self, monkeypatch):
        from repro.testing.faults import ENV_VAR

        monkeypatch.delenv(ENV_VAR, raising=False)
        registry = FaultRegistry()
        assert install_from_env(registry) == 0
        assert registry.active is False

    def test_typoed_env_spec_raises_not_ignores(self):
        registry = FaultRegistry()
        with pytest.raises(ValueError, match="unknown fault action"):
            install_from_env(registry, text="serve.worker.kill=exti")
