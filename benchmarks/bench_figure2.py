"""Experiment F2: the paper's Figure 2 algorithm (Theorem 12).

Paper artifact: Figure 2, "(n+1)-renaming in ASM[(n-1)-slot]" with
Theorem 12's correctness claim.  Workloads:

* a randomized scheduler battery (with crashes) at n=6;
* exhaustive model checking of every interleaving at n=3;
* the adversarial collision placements from the proof's case analysis.

Assertions: every run decides distinct names in [1..n+1].
"""

from repro.algorithms import (
    figure2_renaming,
    figure2_system_factory,
    figure2_task,
)
from repro.shm import (
    GSBOracle,
    RandomScheduler,
    check_algorithm,
    check_algorithm_exhaustive,
    colliding_slot_strategy,
    run_algorithm,
)
from repro.shm.runtime import default_identities


def bench_figure2_battery_n6(benchmark):
    def battery():
        return check_algorithm(
            figure2_task(6),
            figure2_renaming(),
            6,
            system_factory=figure2_system_factory(6, seed=1),
            runs=60,
            seed=2,
        )

    report = benchmark(battery)
    assert report.ok, report.violations[:3]
    assert report.runs == 60


def bench_figure2_exhaustive_n3(benchmark):
    def model_check():
        return check_algorithm_exhaustive(
            figure2_task(3),
            figure2_renaming(),
            3,
            system_factory=figure2_system_factory(3, seed=0),
        )

    report = benchmark(model_check)
    assert report.ok
    assert report.runs == 1743  # all interleavings over all subsets


def bench_figure2_adversarial_collisions(benchmark):
    n = 7
    task = figure2_task(n)

    def adversarial_sweep():
        violations = 0
        for slot in range(1, n):
            for collide_first in (True, False):
                strategy = colliding_slot_strategy(n, slot, collide_first)
                from repro.core import k_slot

                oracle = GSBOracle(k_slot(n, n - 1), strategy=strategy)
                result = run_algorithm(
                    figure2_renaming(),
                    default_identities(n),
                    RandomScheduler(slot * 2 + collide_first),
                    arrays={"STATE": None},
                    objects={"KS": oracle},
                )
                if not task.is_legal_output(result.outputs):
                    violations += 1
        return violations

    violations = benchmark(adversarial_sweep)
    assert violations == 0
