"""Tests for the Theorem 1 / Theorem 2 rename-first constructions."""

from repro.core import renaming, weak_symmetry_breaking
from repro.shm import check_algorithm, check_comparison_based
from repro.algorithms import (
    figure2_renaming,
    figure2_system_factory,
    figure2_task,
    identity_renaming_algorithm,
    sample_large_identities,
    with_intermediate_renaming,
    wrapped_system_factory,
    wsb_from_renaming,
    renaming_oracle_system_factory,
)


class TestTheorem1:
    """Tasks stay solvable when identities come from a huge space."""

    def test_figure2_with_large_identities(self):
        n = 5
        wrapped = with_intermediate_renaming(figure2_renaming())
        factory = wrapped_system_factory(figure2_system_factory(n, seed=2))
        for seed in range(5):
            identities = sample_large_identities(n, seed=seed, spread=20)
            assert max(identities) > 2 * n - 1  # genuinely outside [1..2n-1]
            report = check_algorithm(
                figure2_task(n),
                wrapped,
                n,
                system_factory=factory,
                identities=identities,
                runs=10,
                seed=seed,
            )
            assert report.ok, report.violations[:2]

    def test_identity_renaming_with_large_identities(self):
        # Raw identity renaming would decide values outside [1..2n-1];
        # the wrapper repairs it.
        n = 4
        wrapped = with_intermediate_renaming(identity_renaming_algorithm())
        identities = sample_large_identities(n, seed=3, spread=25)
        report = check_algorithm(
            renaming(n, 2 * n - 1),
            wrapped,
            n,
            system_factory=wrapped_system_factory(lambda: ({}, {})),
            identities=identities,
            runs=20,
            seed=3,
        )
        assert report.ok, report.violations[:2]

    def test_wsb_reduction_with_large_identities(self):
        n = 4
        wrapped = with_intermediate_renaming(wsb_from_renaming())
        factory = wrapped_system_factory(
            renaming_oracle_system_factory(n, 2 * n - 2, seed=1)
        )
        identities = sample_large_identities(n, seed=9, spread=12)
        report = check_algorithm(
            weak_symmetry_breaking(n),
            wrapped,
            n,
            system_factory=factory,
            identities=identities,
            runs=20,
            seed=9,
        )
        assert report.ok, report.violations[:2]


class TestTheorem2:
    """The wrapper makes non-comparison-based algorithms comparison-based."""

    def test_raw_identity_renaming_not_comparison_based(self):
        report = check_comparison_based(identity_renaming_algorithm(), 3, runs=10)
        assert not report.ok

    def test_wrapped_identity_renaming_is_comparison_based(self):
        wrapped = with_intermediate_renaming(identity_renaming_algorithm())
        report = check_comparison_based(
            wrapped,
            3,
            system_factory=wrapped_system_factory(lambda: ({}, {})),
            runs=15,
        )
        assert report.ok, report.violations[:2]

    def test_wrapped_algorithm_still_solves_the_task(self):
        n = 4
        wrapped = with_intermediate_renaming(identity_renaming_algorithm())
        report = check_algorithm(
            renaming(n, 2 * n - 1),
            wrapped,
            n,
            system_factory=wrapped_system_factory(lambda: ({}, {})),
            runs=40,
            seed=5,
        )
        assert report.ok, report.violations[:2]


class TestHelpers:
    def test_sample_large_identities_distinct(self):
        identities = sample_large_identities(6, seed=1, spread=8)
        assert len(set(identities)) == 6
        assert all(1 <= identity <= 48 for identity in identities)
