"""Exporters for the universe graph: Graphviz DOT, JSON, and GraphML.

All three emit nodes and edges in sorted key order, so exports are
deterministic across builds — a rebuilt store produces byte-identical
artifacts, which the regression tests rely on.
"""

from __future__ import annotations

import json
from xml.etree import ElementTree

from .graph import NodeKey, UniverseGraph

#: Graphviz fill colors per solvability verdict.
_DOT_COLORS = {
    "trivial": "palegreen",
    "wait-free solvable": "lightskyblue",
    "not wait-free solvable": "lightcoral",
    "open": "lightgoldenrod",
    "infeasible": "gray80",
}

#: Graphviz edge styles per edge kind.
_DOT_STYLES = {
    "containment": "solid",
    "theorem8": "bold",
    "reduction": "dashed",
    "padding": "dotted",
}


def _node_id(key: NodeKey) -> str:
    return "t{}_{}_{}_{}".format(*key)


def _node_label(graph: UniverseGraph, key: NodeKey) -> str:
    node = graph.node(key)
    label = "<{},{},{},{}>".format(*key)
    if node.labels:
        label += "\\n" + ", ".join(node.labels)
    return label


def universe_to_dot(graph: UniverseGraph, cluster: bool = True) -> str:
    """Graphviz rendering, one cluster per ``(n, m)`` family.

    Nodes are colored by solvability verdict; containment edges are
    solid, Theorem 8 edges bold, registry-reduction edges dashed with the
    reduction name as label.
    """
    lines = [
        'digraph "GSB universe" {',
        "  rankdir=LR;",
        '  node [shape=box, style=filled, fillcolor=white];',
    ]
    for n, m in sorted(graph.cells):
        nodes = sorted(node.key for node in graph.family_nodes(n, m))
        if not nodes:
            continue
        indent = "  "
        if cluster:
            lines.append(f"  subgraph cluster_n{n}_m{m} {{")
            lines.append(f'    label="<{n},{m},-,->";')
            indent = "    "
        for key in nodes:
            node = graph.node(key)
            color = _DOT_COLORS.get(node.solvability, "white")
            lines.append(
                f'{indent}{_node_id(key)} [label="{_node_label(graph, key)}", '
                f'fillcolor={color}];'
            )
        if cluster:
            lines.append("  }")
    for edge in sorted(
        graph.edges(), key=lambda e: (e.source, e.target, e.kind, e.label)
    ):
        style = _DOT_STYLES.get(edge.kind, "solid")
        attrs = [f"style={style}"]
        if edge.kind == "reduction":
            attrs.append(f'label="{edge.label}"')
        lines.append(
            f"  {_node_id(edge.source)} -> {_node_id(edge.target)} "
            f"[{', '.join(attrs)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def universe_to_json(graph: UniverseGraph) -> dict:
    """JSON-serializable dump: cells, nodes, edges, certificates, stats."""
    return {
        "cells": [list(cell) for cell in sorted(graph.cells)],
        "nodes": [
            {
                "key": list(node.key),
                "solvability": node.solvability,
                "reason": node.reason,
                "kernel_count": node.kernel_count,
                "synonyms": [list(pair) for pair in node.synonyms],
                "labels": list(node.labels),
                "hardest": node.hardest,
                "certificate_id": node.certificate_id or None,
            }
            for node in sorted(graph.nodes(), key=lambda n: n.key)
        ],
        "edges": [
            {
                "source": list(edge.source),
                "target": list(edge.target),
                "kind": edge.kind,
                "label": edge.label,
            }
            for edge in sorted(
                graph.edges(), key=lambda e: (e.source, e.target, e.kind, e.label)
            )
        ],
        "certificates": {
            ",".join(map(str, key)): list(names)
            for key, names in sorted(graph.certificates.items())
        },
        "certificate_payloads": {
            certificate_id: payload
            for certificate_id, payload in sorted(
                graph.certificate_payloads.items()
            )
        },
        "stats": graph.stats(),
    }


_GRAPHML_NS = "http://graphml.graphdrawing.org/xmlns"

_NODE_KEYS = (
    ("solvability", "string"),
    ("labels", "string"),
    ("kernel_count", "int"),
    ("hardest", "boolean"),
)
_EDGE_KEYS = (("kind", "string"), ("label", "string"))


def universe_to_graphml(graph: UniverseGraph) -> str:
    """GraphML (stdlib ``xml.etree`` only) with typed node/edge data."""
    ElementTree.register_namespace("", _GRAPHML_NS)
    root = ElementTree.Element(f"{{{_GRAPHML_NS}}}graphml")
    for name, attr_type in _NODE_KEYS:
        ElementTree.SubElement(
            root,
            f"{{{_GRAPHML_NS}}}key",
            id=f"node_{name}",
            attrib={"for": "node", "attr.name": name, "attr.type": attr_type},
        )
    for name, attr_type in _EDGE_KEYS:
        ElementTree.SubElement(
            root,
            f"{{{_GRAPHML_NS}}}key",
            id=f"edge_{name}",
            attrib={"for": "edge", "attr.name": name, "attr.type": attr_type},
        )
    body = ElementTree.SubElement(
        root, f"{{{_GRAPHML_NS}}}graph", id="universe", edgedefault="directed"
    )
    for node in sorted(graph.nodes(), key=lambda n: n.key):
        element = ElementTree.SubElement(
            body, f"{{{_GRAPHML_NS}}}node", id=_node_id(node.key)
        )
        values = {
            "solvability": node.solvability,
            "labels": ";".join(node.labels),
            "kernel_count": str(node.kernel_count),
            "hardest": "true" if node.hardest else "false",
        }
        for name, _ in _NODE_KEYS:
            data = ElementTree.SubElement(
                element, f"{{{_GRAPHML_NS}}}data", key=f"node_{name}"
            )
            data.text = values[name]
    for index, edge in enumerate(
        sorted(graph.edges(), key=lambda e: (e.source, e.target, e.kind, e.label))
    ):
        element = ElementTree.SubElement(
            body,
            f"{{{_GRAPHML_NS}}}edge",
            id=f"e{index}",
            source=_node_id(edge.source),
            target=_node_id(edge.target),
        )
        for name in ("kind", "label"):
            data = ElementTree.SubElement(
                element, f"{{{_GRAPHML_NS}}}data", key=f"edge_{name}"
            )
            data.text = getattr(edge, name)
    ElementTree.indent(root)
    return ElementTree.tostring(
        root, encoding="unicode", xml_declaration=True
    )


def render_universe_stats(graph: UniverseGraph) -> str:
    """One-line-per-count ASCII rendering of :meth:`UniverseGraph.stats`."""
    stats = graph.stats()
    width = max(len(name) for name in stats)
    lines = ["GSB universe graph"]
    lines.extend(f"  {name:<{width}}  {value}" for name, value in stats.items())
    return "\n".join(lines)


def write_text(text: str, path: str) -> None:
    """Write an export artifact with a trailing newline."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")


def universe_export(graph: UniverseGraph, fmt: str) -> str:
    """Dispatch on format name: ``dot``, ``json`` or ``graphml``."""
    if fmt == "dot":
        return universe_to_dot(graph)
    if fmt == "json":
        return json.dumps(universe_to_json(graph), indent=2)
    if fmt == "graphml":
        return universe_to_graphml(graph)
    raise ValueError(f"unknown export format {fmt!r}; use dot, json or graphml")
