"""Per-endpoint request metrics for the serving layer.

Structured counters in the same spirit as
:func:`repro.core.cache_config.cache_stats`: one row per endpoint with
request/error/not-modified counts and latency aggregates, cheap enough
to record on every request and dumped verbatim at ``/stats``.  Counter
updates take a lock because the test/bench harness drives the service
from many client threads at once.

Next to the per-endpoint rows lives a small set of *transport*
counters — events the HTTP layer decides before (or instead of) routing
a request: load sheds, deadline timeouts, idle-connection closes and
malformed requests.  They get their own block in ``/stats`` because a
shed request never reaches an endpoint row at all.
"""

from __future__ import annotations

from threading import Lock

#: The transport-level events the HTTP layer records.
TRANSPORT_COUNTERS = ("shed", "timeouts", "idle_closed", "malformed")


class ServiceMetrics:
    """Request counters and latency aggregates, keyed by endpoint."""

    def __init__(self) -> None:
        self._lock = Lock()
        self._rows: dict[str, dict[str, float]] = {}
        self._transport = {name: 0 for name in TRANSPORT_COUNTERS}

    def record(
        self, endpoint: str, status: int, seconds: float
    ) -> None:
        """Count one handled request (304 revalidations counted apart)."""
        with self._lock:
            row = self._rows.setdefault(
                endpoint,
                {
                    "requests": 0,
                    "errors": 0,
                    "not_modified": 0,
                    "seconds_total": 0.0,
                    "seconds_max": 0.0,
                },
            )
            row["requests"] += 1
            if status >= 400:
                row["errors"] += 1
            if status == 304:
                row["not_modified"] += 1
            row["seconds_total"] += seconds
            row["seconds_max"] = max(row["seconds_max"], seconds)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-endpoint rows plus derived mean latency, for ``/stats``."""
        with self._lock:
            out = {}
            for endpoint, row in sorted(self._rows.items()):
                requests = int(row["requests"])
                out[endpoint] = {
                    "requests": requests,
                    "errors": int(row["errors"]),
                    "not_modified": int(row["not_modified"]),
                    "seconds_total": row["seconds_total"],
                    "seconds_max": row["seconds_max"],
                    "mean_ms": (
                        1000.0 * row["seconds_total"] / requests
                        if requests
                        else 0.0
                    ),
                }
            return out

    def total_requests(self) -> int:
        with self._lock:
            return int(sum(row["requests"] for row in self._rows.values()))

    # -- transport-level events (recorded by the HTTP layer) -------------

    def record_transport(self, event: str) -> None:
        """Count one shed/timeout/idle-close/malformed-request event."""
        with self._lock:
            self._transport[event] += 1

    def transport_snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._transport)
