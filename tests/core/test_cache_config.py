"""The shared cache knob: registration, stats, bounds, reconfiguration."""

import pytest

from repro.core import cache_config
from repro.core.cache_config import BoundedDictCache, managed_cache


class TestManagedFunction:
    def test_registered_caches_cover_the_hot_closed_forms(self):
        names = set(cache_config.cache_stats())
        assert {
            "solvability.classify_parameters",
            "solvability.binomial_gcd",
            "kernel.count_bounded_partitions",
            "kernel.kernel_sets",
        } <= names

    def test_stats_track_hits_and_misses(self):
        from repro.core.solvability import binomial_gcd

        binomial_gcd.cache_clear()
        binomial_gcd(30)
        binomial_gcd(30)
        stats = cache_config.cache_stats()["solvability.binomial_gcd"]
        assert stats["misses"] >= 1 and stats["hits"] >= 1
        assert stats["maxsize"] == cache_config.current_maxsize()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            managed_cache("solvability.binomial_gcd")(lambda n: n)

    def test_cache_info_compatible_with_lru_cache(self):
        from repro.core.solvability import classification_cache_info

        info = classification_cache_info()
        assert hasattr(info, "hits") and hasattr(info, "misses")


class TestBoundedDictCache:
    def test_lru_eviction_at_the_bound(self):
        cache = BoundedDictCache("test.bounded")
        try:
            cache.rebuild(maxsize=2)
            cache.put("a", 1)
            cache.put("b", 2)
            assert cache.get("a") == 1  # refresh a
            cache.put("c", 3)  # evicts b, the least recent
            assert cache.get("b") is None
            assert cache.get("a") == 1 and cache.get("c") == 3
        finally:
            cache_config._registry.pop("test.bounded", None)

    def test_peek_does_not_count(self):
        cache = BoundedDictCache("test.peek")
        try:
            cache.put("k", "v")
            baseline = cache.stats()
            assert cache.peek("k") == "v" and cache.peek("nope") is None
            assert cache.stats() == baseline
        finally:
            cache_config._registry.pop("test.peek", None)


class TestConfigure:
    def test_configure_rebuilds_every_cache(self):
        from repro.core.solvability import binomial_gcd

        original = cache_config.current_maxsize()
        try:
            cache_config.configure(128)
            assert cache_config.current_maxsize() == 128
            binomial_gcd(12)
            stats = cache_config.cache_stats()["solvability.binomial_gcd"]
            assert stats["maxsize"] == 128
        finally:
            cache_config.configure(original)

    def test_eviction_does_not_change_results(self):
        from repro.core.kernel import kernel_vectors

        original = cache_config.current_maxsize()
        reference = kernel_vectors(9, 4, 1, 5)
        try:
            cache_config.configure(4)  # absurdly tight: constant eviction
            for low in range(0, 4):
                for high in range(low, 10):
                    kernel_vectors(9, 4, low, high)
            assert kernel_vectors(9, 4, 1, 5) == reference
        finally:
            cache_config.configure(original)

    def test_clear_all_caches_resets_counters(self):
        from repro.core.solvability import binomial_gcd

        binomial_gcd(20)
        cache_config.clear_all_caches()
        stats = cache_config.cache_stats()["solvability.binomial_gcd"]
        assert stats["hits"] == 0 and stats["misses"] == 0 and stats["size"] == 0
