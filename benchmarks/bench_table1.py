"""Experiment T1: regenerate the paper's Table 1.

Paper artifact: Table 1, "Kernels of <n,m,l,u>-GSB tasks (with n=6, m=3)".
Workload: enumerate all feasible <6,3,l,u> parameterizations, compute each
kernel set and canonical flag, and lay them out against the seven kernel
columns.  The assertion pins the regenerated table to the published one
(modulo the omitted synonym row recorded in EXPERIMENTS.md).
"""

from repro.analysis import render_table1, table1, table1_matches_paper


def bench_table1_regeneration(benchmark, paper_n, paper_m):
    table = benchmark(table1, paper_n, paper_m)
    ok, problems = table1_matches_paper(table)
    assert ok, problems
    assert len(table.columns) == 7
    assert len(table.rows) == 15


def bench_table1_rendering(benchmark):
    table = table1()
    text = benchmark(render_table1, table)
    assert "<6,3,0,6>" in text
    assert text.count("x") >= 26  # the paper's mark count


def bench_table1_larger_family(benchmark):
    # The same pipeline on a bigger family (n=10, m=4): 5 columns per
    # Table-1 layout scale up without special cases.
    table = benchmark(table1, 10, 4)
    assert table.rows
    assert all(row.kernel_count > 0 for row in table.rows)
