"""Adversarial tests: ``universe check`` must catch tampered overrides.

The override rows in ``overrides.json`` are the store's mutable surface
— close-open and sweep campaigns append to them — so the checker treats
each row adversarially: the row's claim is only accepted when its own
certificate proves it.  These tests edit the document the way an
attacker (or a bad merge) would, bypassing ``apply_closures``, and
assert the check fails loudly.
"""

import json

import pytest

from repro.__main__ import main
from repro.universe import UniverseStore


@pytest.fixture(scope="module")
def root(tmp_path_factory):
    root = tmp_path_factory.mktemp("tamper") / "store"
    store = UniverseStore(root)
    store.build(4, 3)
    # One honest override row, carrying a real certificate lifted from
    # the graph: the baseline every tamper test mutates.
    graph = store.load()
    node = next(n for n in graph.nodes() if n.certificate_id)
    payload = graph.certificate_payloads[node.certificate_id]
    store.apply_closures(
        {
            node.key: {
                "solvability": payload["verdict"],
                "reason": "test closure",
                "tier": 4,
                "procedure": "decision-map",
                "certificate_id": node.certificate_id,
                "certificate": payload,
            }
        },
        {"test": True},
    )
    return root


@pytest.fixture
def overrides_path(root):
    """Hand each test a pristine document; restore it afterwards."""
    path = root / "overrides.json"
    pristine = path.read_text()
    yield path
    path.write_text(pristine)


def tamper(path, mutate):
    document = json.loads(path.read_text())
    raw_key, row = next(iter(document["overrides"].items()))
    mutate(document["overrides"], raw_key, row)
    path.write_text(json.dumps(document))


def check(root):
    return main(["universe", "check", "--dir", str(root)])


class TestTamperedOverrides:
    def test_honest_document_passes(self, root, overrides_path, capsys):
        assert check(root) == 0
        assert "all OK" in capsys.readouterr().out

    def test_flipped_solvability_is_caught(self, root, overrides_path, capsys):
        def mutate(overrides, raw_key, row):
            row["solvability"] = "not wait-free solvable"

        tamper(overrides_path, mutate)
        assert check(root) == 1
        out = capsys.readouterr().out
        assert "its certificate proves" in out

    def test_forged_certificate_id_is_caught(
        self, root, overrides_path, capsys
    ):
        def mutate(overrides, raw_key, row):
            row["certificate_id"] = "c" + "0" * 16

        tamper(overrides_path, mutate)
        assert check(root) == 1
        assert "does not match the payload" in capsys.readouterr().out

    def test_certificate_grafted_from_another_cell_is_caught(
        self, root, overrides_path, capsys
    ):
        # The certificate is genuine and its id consistent — but it
        # proves a different task than the row it was grafted onto.
        def mutate(overrides, raw_key, row):
            del overrides[raw_key]
            overrides["4,3,0,2"] = row

        tamper(overrides_path, mutate)
        assert check(root) == 1
        assert "not this cell" in capsys.readouterr().out

    def test_verdict_without_certificate_is_caught(
        self, root, overrides_path, capsys
    ):
        def mutate(overrides, raw_key, row):
            row["certificate"] = None

        tamper(overrides_path, mutate)
        assert check(root) == 1
        assert "carries no certificate" in capsys.readouterr().out

    def test_unparseable_key_is_caught(self, root, overrides_path, capsys):
        def mutate(overrides, raw_key, row):
            overrides["not,a,key"] = overrides.pop(raw_key)

        tamper(overrides_path, mutate)
        assert check(root) == 1
        assert "unparseable cell key" in capsys.readouterr().out

    def test_corrupt_certificate_body_is_caught(
        self, root, overrides_path, capsys
    ):
        # Keep the id honest for the corrupted payload so the replay
        # itself (not the id cross-check) has to catch the damage.
        from repro.decision import certificate_id

        def mutate(overrides, raw_key, row):
            row["certificate"]["rule"] = "no-such-rule"
            row["certificate_id"] = certificate_id(row["certificate"])

        tamper(overrides_path, mutate)
        assert check(root) == 1
        out = capsys.readouterr().out
        assert "FAIL override" in out
