"""Tests for canonical representatives (Theorem 7)."""

import pytest

from repro.core import (
    SymmetricGSBTask,
    brute_force_representative,
    canonical_parameters,
    canonical_representative,
    is_canonical,
    synonym_class,
    tighten_once,
)


class TestTightenOnce:
    def test_fixed_point_stays(self):
        assert tighten_once(6, 3, 1, 4) == (1, 4)
        assert tighten_once(6, 3, 2, 2) == (2, 2)

    def test_single_application(self):
        # <6,3,1,6>: f gives (1, 4).
        assert tighten_once(6, 3, 1, 6) == (1, 4)

    def test_needs_iteration(self):
        # <6,3,0,2>: f gives (2, 2) in one step here, already fixed after.
        assert tighten_once(6, 3, 0, 2) == (2, 2)


class TestCanonicalParameters:
    def test_paper_representatives(self):
        # Section 4.2's worked examples for n=6, m=3.
        assert canonical_parameters(6, 3, 1, 6) == (1, 4)
        assert canonical_parameters(6, 3, 1, 5) == (1, 4)
        assert canonical_parameters(6, 3, 2, 5) == (2, 2)
        assert canonical_parameters(6, 3, 0, 2) == (2, 2)
        assert canonical_parameters(6, 3, 1, 2) == (2, 2)
        assert canonical_parameters(6, 3, 1, 3) == (1, 3)

    def test_m_equals_one(self):
        assert canonical_parameters(5, 1, 0, 5) == (5, 5)

    def test_perfect_renaming_from_0_1(self):
        # <n, n, 0, 1> is perfect renaming in disguise.
        assert canonical_parameters(5, 5, 0, 1) == (1, 1)

    def test_infeasible_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            canonical_parameters(6, 3, 3, 4)

    def test_idempotent(self, small_family_grid):
        for n, m in small_family_grid:
            for low in range(n + 1):
                for high in range(low, n + 1):
                    if not SymmetricGSBTask(n, m, low, high).is_feasible:
                        continue
                    fixed = canonical_parameters(n, m, low, high)
                    assert canonical_parameters(n, m, *fixed) == fixed


class TestTheorem7:
    def test_canonical_is_synonym(self, small_family_grid):
        for n, m in small_family_grid:
            for low in range(n + 1):
                for high in range(low, n + 1):
                    task = SymmetricGSBTask(n, m, low, high)
                    if not task.is_feasible:
                        continue
                    assert canonical_representative(task).same_task(task)

    def test_fixed_point_equals_brute_force(self):
        # Theorem 7 validated against independent search (small grid: the
        # brute force is quadratic in n per task).
        for n, m in [(4, 2), (5, 3), (6, 3), (6, 2)]:
            for low in range(n + 1):
                for high in range(low, n + 1):
                    task = SymmetricGSBTask(n, m, low, high)
                    if not task.is_feasible:
                        continue
                    fixed = canonical_representative(task)
                    brute = brute_force_representative(task)
                    assert fixed.parameters == brute.parameters, task

    def test_canonical_parameters_are_extremal_kernel_entries(self):
        # The canonical (l', u') are the min and max entries over the
        # kernel set — an equivalent characterization used as cross-check.
        for low in range(0, 3):
            for high in range(max(low, 2), 7):
                task = SymmetricGSBTask(6, 3, low, high)
                if not task.is_feasible:
                    continue
                kernels = task.kernel_set
                expected = (
                    min(min(k) for k in kernels),
                    max(max(k) for k in kernels),
                )
                assert canonical_parameters(6, 3, low, high) == expected


class TestIsCanonical:
    def test_paper_yes_rows(self):
        # Exactly the rows marked "yes" in Table 1.
        yes_rows = {(0, 6), (0, 5), (0, 4), (1, 4), (0, 3), (1, 3), (2, 2)}
        for low in range(7):
            for high in range(low, 7):
                task = SymmetricGSBTask(6, 3, low, high)
                if not task.is_feasible:
                    continue
                assert is_canonical(task) == ((low, high) in yes_rows)

    def test_infeasible_never_canonical(self):
        assert not is_canonical(SymmetricGSBTask(6, 3, 3, 3))


class TestSynonymClass:
    def test_paper_class_of_1_4(self):
        members = {task.parameters for task in synonym_class(SymmetricGSBTask(6, 3, 1, 4))}
        assert members == {(6, 3, 1, 4), (6, 3, 1, 5), (6, 3, 1, 6)}

    def test_paper_class_of_2_2_includes_omitted_row(self):
        members = {task.parameters for task in synonym_class(SymmetricGSBTask(6, 3, 2, 2))}
        # The paper's table lists six of these; (2, 6) is the omitted one.
        assert members == {
            (6, 3, 2, 2), (6, 3, 2, 3), (6, 3, 2, 4), (6, 3, 2, 5),
            (6, 3, 2, 6), (6, 3, 0, 2), (6, 3, 1, 2),
        }

    def test_class_members_all_synonyms(self):
        base = SymmetricGSBTask(6, 3, 0, 4)
        for member in synonym_class(base):
            assert member.same_task(base)
