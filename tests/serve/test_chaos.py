"""Chaos suite: injected faults must degrade service, never break it.

Each test arms one fault point from :mod:`repro.testing.faults` and pins
the designed failure behavior:

* a request held past its deadline answers ``503`` + ``Retry-After``
  promptly — never a hung connection;
* past the in-flight ceiling new requests are shed with ``503`` while
  ``/healthz`` stays exempt (liveness must outlive overload);
* a torn response write kills that connection only — the next request
  is served normally;
* pack read/row faults demote the binary backend to the JSON shards
  with a loud ``RuntimeWarning`` and the *correct* answer;
* a SIGKILL'd supervisor worker is restarted within the backoff budget
  while requests on surviving connections keep succeeding.
"""

import socket
import threading
import time
import warnings

import pytest

from repro.serve import BackgroundServer, ServeConfig, SupervisedServer
from repro.testing import FAULTS, FaultError
from repro.universe import UniverseStore
from repro.universe.persist import HOT_CELLS

DECIDE = "/decide?n=6&m=3&low=1&high=4"


@pytest.fixture(scope="module")
def root(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-chaos") / "store"
    store = UniverseStore(root)
    store.build(8, 4)
    store.pack()
    return root


@pytest.fixture(scope="module")
def node_keys(root):
    graph = UniverseStore(root, backend="json").load()
    return sorted(node.key for node in graph.nodes())


@pytest.fixture(autouse=True)
def disarmed_faults():
    """No chaos test may leak an armed fault into the next one."""
    FAULTS.clear()
    yield
    FAULTS.clear()


def hold_path(path: str, seconds: float):
    """An action delaying only ``path`` (so /stats stays responsive)."""

    def action(context):
        if context.get("path") == path:
            time.sleep(seconds)

    return action


def raise_fault(context):
    raise FaultError("injected pack failure")


class TestDeadlines:
    def test_held_request_gets_503_retry_after_not_a_hang(self, root):
        config = ServeConfig(request_timeout=0.3, retry_after=7)
        with FAULTS.injected("serve.request.hold", hold_path("/decide", 1.5)):
            with BackgroundServer(root, backend="binary", config=config) as server:
                started = time.monotonic()
                status, headers, payload = server.get(DECIDE)
                elapsed = time.monotonic() - started
                assert status == 503
                assert headers.get("Retry-After") == "7"
                assert "deadline" in payload["error"]
                # Answered at the 0.3s deadline, far before the 1.5s hold
                # releases: the connection never wedged.
                assert elapsed < 1.2
                # A timed-out response closes its connection: a straggler
                # thread finishing late must not desynchronize keep-alive.
                assert headers.get("Connection") == "close"
                _, _, stats = server.get("/stats")
                assert stats["transport"]["timeouts"] >= 1

    def test_healthz_answers_while_every_handler_thread_is_wedged(self, root):
        config = ServeConfig(request_timeout=30.0, handler_threads=2)
        with FAULTS.injected("serve.request.hold", hold_path("/decide", 1.0)):
            with BackgroundServer(root, backend="binary", config=config) as server:
                wedgers = [
                    threading.Thread(target=server.get, args=(DECIDE,))
                    for _ in range(config.handler_threads)
                ]
                for thread in wedgers:
                    thread.start()
                time.sleep(0.2)  # both handler threads now hold
                started = time.monotonic()
                status, _, payload = server.get("/healthz")
                assert status == 200 and payload["status"] == "ok"
                assert time.monotonic() - started < 0.5
                for thread in wedgers:
                    thread.join(timeout=30)


class TestLoadShedding:
    def test_requests_past_the_inflight_ceiling_are_shed(self, root):
        config = ServeConfig(request_timeout=10.0, max_inflight=1)
        with FAULTS.injected("serve.request.hold", hold_path("/decide", 1.0)):
            with BackgroundServer(root, backend="binary", config=config) as server:
                holder_result = {}

                def holder():
                    holder_result["response"] = server.get(DECIDE)

                thread = threading.Thread(target=holder)
                thread.start()
                time.sleep(0.3)  # the holder now occupies the one slot
                started = time.monotonic()
                status, headers, payload = server.get(DECIDE)
                assert status == 503
                assert headers.get("Retry-After") == "1"
                assert "shed" in payload["error"]
                assert time.monotonic() - started < 0.5  # shed immediately
                # Liveness is exempt from the shed gate.
                health, _, _ = server.get("/healthz")
                assert health == 200
                thread.join(timeout=30)
                # The held request itself completed fine.
                assert holder_result["response"][0] == 200
                _, _, stats = server.get("/stats")
                assert stats["transport"]["shed"] >= 1

    def test_service_recovers_after_saturation_clears(self, root):
        config = ServeConfig(max_inflight=1)
        with BackgroundServer(root, backend="binary", config=config) as server:
            for _ in range(3):
                status, _, payload = server.get(DECIDE)
                assert status == 200
                assert isinstance(payload["solvability"], str)
                assert payload["solvability"]


class TestTornWrites:
    def test_truncated_response_kills_only_its_connection(self, root):
        truncate = lambda context: context["payload"][:12]  # noqa: E731
        with BackgroundServer(root, backend="binary") as server:
            with FAULTS.injected("serve.response.write", truncate, times=1):
                with socket.create_connection(
                    (server.host, server.port), timeout=10
                ) as sock:
                    sock.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
                    blob = b""
                    while True:
                        chunk = sock.recv(65536)
                        if not chunk:
                            break
                        blob += chunk
                # Exactly the torn prefix, then a hard close.
                assert blob == b"HTTP/1.1 200"
            # The next connection is served in full.
            status, _, payload = server.get("/healthz")
            assert status == 200 and payload["status"] == "ok"

    def test_dropped_response_write(self, root):
        drop = lambda context: b""  # noqa: E731
        with BackgroundServer(root, backend="binary") as server:
            with FAULTS.injected("serve.response.write", drop, times=1):
                with socket.create_connection(
                    (server.host, server.port), timeout=10
                ) as sock:
                    sock.sendall(b"GET /healthz HTTP/1.1\r\n\r\n")
                    assert sock.recv(65536) == b""  # nothing, then close
            status, _, _ = server.get("/healthz")
            assert status == 200


class TestBackendFaults:
    """Pack faults demote to the JSON shards — loudly, and correctly."""

    def expected(self, root, key):
        HOT_CELLS.clear()
        value = UniverseStore(root, backend="json").node_at(*key).solvability
        HOT_CELLS.clear()
        return value

    def test_pack_unreadable_at_open_falls_back_to_shards(self, root, node_keys):
        key = node_keys[-1]
        expected = self.expected(root, key)
        store = UniverseStore(root, backend="binary")
        with FAULTS.injected("backend.pack.read", raise_fault):
            with pytest.warns(RuntimeWarning, match="falling back to\\s+JSON"):
                node = store.node_at(*key)
        assert node.solvability == expected

    def test_pack_read_failure_mid_stream_falls_back(self, root, node_keys):
        warm_key, cold_key = node_keys[0], node_keys[-2]
        expected = self.expected(root, cold_key)
        store = UniverseStore(root, backend="binary")
        assert store.node_at(*warm_key) is not None  # pack opened and healthy
        with FAULTS.injected("backend.pack.read", raise_fault):
            with pytest.warns(RuntimeWarning, match="pack read failed"):
                node = store.node_at(*cold_key)
        assert node.solvability == expected

    def test_torn_pack_row_falls_back(self, root, node_keys):
        key = node_keys[len(node_keys) // 2]
        expected = self.expected(root, key)
        store = UniverseStore(root, backend="binary")
        corrupt = lambda context: context["payload"][:3]  # invalid JSON  # noqa: E731
        with FAULTS.injected("backend.pack.row", corrupt):
            with pytest.warns(RuntimeWarning, match="pack read failed"):
                node = store.node_at(*key)
        assert node.solvability == expected

    def test_served_requests_stay_200_while_the_pack_faults(self, root):
        HOT_CELLS.clear()
        expected = UniverseStore(root, backend="json").node_at(
            6, 3, 1, 4
        ).solvability
        HOT_CELLS.clear()
        with BackgroundServer(root, backend="binary") as server:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                with FAULTS.injected("backend.pack.read", raise_fault):
                    for _ in range(3):
                        status, _, payload = server.get(DECIDE)
                        assert status == 200
                        assert payload["solvability"] == expected


class TestWorkerKillUnderLoad:
    def test_supervisor_absorbs_a_sigkill_under_traffic(self, root):
        with SupervisedServer(root, workers=2, backend="binary") as server:
            stop = threading.Event()
            failures: list[str] = []
            successes = [0]

            def storm(worker: int) -> None:
                while not stop.is_set():
                    try:
                        status, _, payload = server.get(DECIDE)
                    except OSError:
                        # This connection landed on the dying worker —
                        # the one casualty class the model allows.
                        continue
                    if status == 200:
                        successes[0] += 1
                    else:
                        failures.append(f"worker {worker}: status {status}")

            threads = [
                threading.Thread(target=storm, args=(index,))
                for index in range(3)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.3)
            victim = server.worker_pids()[0]
            server.kill_worker(victim)

            # Restart must land within the backoff budget (first crash
            # restarts after ~0.1s; allow generous CI scheduling slack).
            deadline = time.monotonic() + 10.0
            recovered = False
            while time.monotonic() < deadline:
                try:
                    board = server.stats()["workers"]
                except OSError:
                    time.sleep(0.1)
                    continue
                if board["alive"] == 2 and board["restarts_total"] >= 1:
                    recovered = True
                    break
                time.sleep(0.1)
            stop.set()
            for thread in threads:
                thread.join(timeout=30)

            assert recovered, f"worker never restarted:\n{server.output}"
            assert victim not in server.worker_pids()
            # Every request that reached a live worker succeeded.
            assert not failures, failures[:10]
            assert successes[0] > 0
            server.wait_healthy(10.0)


class TestCleanTeardown:
    """BackgroundServer.__exit__ must provably release thread+loop+port."""

    def test_exit_asserts_clean_thread_and_loop(self, root):
        server = BackgroundServer(root, backend="binary")
        with server:
            status, _, _ = server.get("/healthz")
            assert status == 200
        assert server._thread is not None and not server._thread.is_alive()
        assert server._loop is not None and server._loop.is_closed()

    def test_same_port_reopens_immediately_after_exit(self, root):
        with BackgroundServer(root, backend="binary") as first:
            port = first.port
            assert first.get("/healthz")[0] == 200
        # If __exit__ leaked the socket this second bind would fail.
        with BackgroundServer(root, backend="binary", port=port) as second:
            assert second.port == port
            assert second.get("/healthz")[0] == 200
