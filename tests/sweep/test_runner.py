"""Tests for the campaign runner: prepare, inline run, finalize.

The rectangle ``n <= 4, m <= 3`` has exactly one OPEN cell after the
seed tiers — ``(4,3,0,2)`` — which makes it the perfect campaign
target: small enough to attack in-process, real enough that its closure
(a 2-round SAT-found decision map) exercises the whole certify-commit
path the acceptance criteria care about.
"""

import pytest

from repro.sweep import SweepConfig, SweepRunner, sweep_jobs_path
from repro.sweep.jobs import DONE, JobStore, OUTCOME_REFUTED
from repro.universe import UniverseStore

TARGET = (4, 3, 0, 2)


@pytest.fixture
def store(tmp_path):
    store = UniverseStore(tmp_path / "u")
    store.build(4, 3)
    return store


def config(**overrides):
    defaults = dict(
        workers=0,
        max_rounds=1,
        max_conflicts=200_000,
        max_assignments=200_000,
        lease_seconds=60.0,
    )
    defaults.update(overrides)
    return SweepConfig(**defaults)


class TestPrepare:
    def test_prepare_enqueues_open_ladder(self, store):
        runner = SweepRunner(store, config())
        assert runner.open_keys() == [TARGET]
        assert runner.prepare() == 2  # sat + exhaustive at r=1
        assert runner.prepare() == 0  # idempotent
        assert sweep_jobs_path(store.root).is_file()

    def test_prepare_records_signature(self, store):
        runner = SweepRunner(store, config())
        runner.prepare()
        assert '"sweep": true' in runner.jobs.get_meta("signature")


class TestInlineCampaign:
    def test_refutation_round_leaves_cell_open_with_evidence(self, store):
        runner = SweepRunner(store, config())
        report = runner.campaign()
        assert report.enqueued == 2
        assert report.completed == 2
        assert report.closed_cells == []
        # (4,3,0,2) has no 1-round protocol: both attacks refute.
        outcomes = {j.attack: j.outcome for j in runner.jobs.iter_done()}
        assert outcomes == {
            "sat": OUTCOME_REFUTED,
            "exhaustive": OUTCOME_REFUTED,
        }
        # The strengthened evidence lands in the decision cache...
        entry = store.decision_cache.get(TARGET)
        assert entry["solvability"] == "open"
        assert any("no comparison-based" in line for line in entry["evidence"])
        # ...but never in the overrides document (the cell is still OPEN).
        assert store.read_overrides().get("overrides", {}) == {}

    def test_max_jobs_pauses_and_resume_continues(self, store):
        runner = SweepRunner(store, config())
        runner.prepare()
        assert runner.run(max_jobs=1) == 1
        counts = runner.jobs.counts()
        assert counts[DONE] == 1
        # A fresh runner against the same store picks up where we left.
        resumed = SweepRunner(store, config())
        assert resumed.run() == 1
        assert resumed.jobs.counts()[DONE] == 2


@pytest.fixture(scope="module")
def closed_campaign(tmp_path_factory):
    """One full campaign that closes (4,3,0,2) — shared by the slow tests."""
    store = UniverseStore(tmp_path_factory.mktemp("campaign") / "u")
    store.build(4, 3)
    runner = SweepRunner(store, config(max_rounds=2))
    report = runner.campaign()
    return store, runner, report


@pytest.mark.slow
class TestClosureCampaign:
    def test_campaign_closes_the_open_cell(self, closed_campaign):
        store, _, report = closed_campaign
        assert report.closed_cells == [TARGET]
        row = store.read_overrides()["overrides"]["4,3,0,2"]
        assert row["solvability"] == "wait-free solvable"
        assert row["tier"] == 4
        assert row["reason"].startswith("sweep[")
        assert row["certificate"]["rounds"] == 2
        # The freshly loaded graph reflects the closure.
        graph = store.load()
        node = next(n for n in graph.nodes() if n.key == TARGET)
        assert node.solvability == "wait-free solvable"

    def test_closure_certificate_replays(self, closed_campaign):
        from repro.decision import certificate_id, check_certificate_payload

        store, _, _ = closed_campaign
        row = store.read_overrides()["overrides"]["4,3,0,2"]
        assert check_certificate_payload(row["certificate"]) == []
        assert certificate_id(row["certificate"]) == row["certificate_id"]

    def test_finalize_is_idempotent(self, closed_campaign):
        store, runner, _ = closed_campaign
        first = store.read_overrides()
        fingerprint = store.fingerprint()
        again = runner.finalize()
        assert again.closed_cells == [TARGET]  # reported, not rewritten
        assert store.read_overrides() == first
        assert store.fingerprint() == fingerprint

    def test_closure_supersedes_deeper_rungs(self, closed_campaign):
        _, runner, _ = closed_campaign
        outcomes = {
            (j.attack, j.rung): j.outcome for j in runner.jobs.iter_done()
        }
        # The sat rung at r=2 closes; the exhaustive r=2 cross-check is
        # cancelled as superseded rather than burning its budget.
        assert outcomes[("sat", 2)] == "closed"
        assert outcomes[("exhaustive", 3)] == "superseded"


class TestStatusReport:
    def test_no_campaign_returns_none(self, store):
        from repro.sweep import campaign_status

        assert campaign_status(store) is None

    def test_status_payload_shape(self, store):
        from repro.sweep import campaign_status, render_status

        runner = SweepRunner(store, config())
        runner.campaign()
        payload = campaign_status(store)
        assert payload["jobs"]["done"] == 2
        assert payload["jobs"]["pending"] == 0
        assert payload["attacks"]["sat"]["done"] == 1
        assert payload["throughput_jobs_per_second"] > 0
        assert payload["signature"]["sweep"] is True
        assert payload["closed_by_sweep"] == 0
        assert payload["open_remaining"] == 1
        assert "writes" in payload["caches"]["decision"]
        text = render_status(payload)
        assert "2 done" in text
        assert "OPEN region" in text
